// Byte-budgeted world-arena cache: the serving layer's answer to the
// paper's Section 7 concern that sample storage is the binding
// constraint at scale. The cache keeps at most `budget_bytes` of
// WorldArena::ResidentBytes resident (LRU eviction above it) — backends
// that spill or compress (store/arena_storage.h) are charged what they
// actually hold in RAM, not their logical footprint, so a spilled arena
// never evicts live flat arenas prematurely. RR-set arenas and
// condensed-snapshot arenas share the one budget, keyed by
// strings that carry the arena kind — and rebuilds evicted arenas on
// demand: a correct trade because arena content is a PURE FUNCTION of
// its cache key: the prefix-closed sampling streams (sim/rr_arena.h,
// sim/snapshot_arena.h) make a rebuild byte-identical to the evicted
// original, so eviction costs latency, never answers.
//
// Concurrency: slot lookup/insert and byte accounting run under one
// mutex; the arena build itself runs OUTSIDE it, serialized per key by
// std::call_once (api::Session's ArenaSlot discipline) — concurrent
// requests for the same key build once and share, concurrent requests
// for different keys build in parallel. Returned shared_ptrs keep an
// arena alive for as long as any view holds it, so eviction never
// invalidates an in-flight query.

#ifndef SOLDIST_SERVE_ARENA_CACHE_H_
#define SOLDIST_SERVE_ARENA_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/world_arena.h"

namespace soldist {
namespace serve {

/// \brief LRU arena cache with a byte budget and always-admit policy.
///
/// Admission always succeeds (the freshly requested arena is never the
/// eviction victim), so a single arena larger than the whole budget
/// still serves — the cache degrades to hold-one instead of failing.
///
/// The cache stores arenas through the WorldArena base: the KEY decides
/// what concrete arena a builder produces (QueryService prefixes every
/// key with ArenaKindName), so a caller that minted a key knows the
/// concrete type behind it and may static-cast the returned pointer.
class ArenaCache {
 public:
  /// \param budget_bytes total WorldArena::ResidentBytes the cache may
  /// keep resident; 0 = unlimited (never evicts).
  explicit ArenaCache(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  ArenaCache(const ArenaCache&) = delete;
  ArenaCache& operator=(const ArenaCache&) = delete;

  /// A cached arena, co-owned by every view minted from it.
  using ArenaPtr = std::shared_ptr<const WorldArena>;

  /// Builds the arena for one key; receives the capacity to sample at.
  /// Must return non-null with capacity() >= 1. A builder MAY come back
  /// short (capacity() < requested) when its build was cancelled at a
  /// deadline — the cache then admits the arena at its ACTUAL capacity
  /// and marks the entry partial, so later requests at the full τ see a
  /// miss (upgrade) rather than a silent short answer.
  using Builder = std::function<ArenaPtr(std::uint64_t capacity)>;

  /// Returns the cached arena for `key` with capacity >= `min_capacity`,
  /// invoking `build(capacity)` on a miss. A cached arena with a SMALLER
  /// capacity is upgraded: it is retired (in-flight views keep it alive)
  /// and a fresh arena is built at `min_capacity` — byte-identical on
  /// the shared prefix, so answers never change across the upgrade.
  /// NOTE: the returned arena can be SMALLER than `min_capacity` when
  /// the builder was cancelled (see Builder) — callers that care must
  /// check capacity() and degrade explicitly.
  ArenaPtr GetOrBuild(const std::string& key, std::uint64_t min_capacity,
                      const Builder& build);

  /// Hit-only lookup: the resident arena for `key` iff it is fully
  /// built, accounted, and has capacity >= `min_capacity`. Never builds,
  /// never blocks on another thread's build. Counts as a hit when it
  /// serves; a miss leaves every counter untouched.
  ArenaPtr TryGet(const std::string& key, std::uint64_t min_capacity);

  /// The largest already-resident arena for `key` at ANY capacity
  /// (including a partial prefix admitted by a cancelled build), or null.
  /// This is the degraded-answer source: when a deadline or shed stops a
  /// fresh build, the service answers from whatever τ prefix is already
  /// resident. Touches the LRU but no hit/build counters.
  ArenaPtr LookupResident(const std::string& key);

  /// One fully-built resident entry as the scrubber sees it: the arena
  /// plus the ContentChecksum recorded when the build was admitted.
  struct ResidentEntry {
    std::string key;
    ArenaPtr arena;
    std::uint64_t admitted_checksum = 0;
  };

  /// Snapshot of every accounted entry in key order. Touches no LRU
  /// state and no counters — a scrub pass must not perturb eviction.
  std::vector<ResidentEntry> ResidentEntries() const;

  /// Forcibly drops `key` (scrubber: the resident arena no longer
  /// hashes to its admitted checksum — it rotted in RAM and must never
  /// be served again). Charged bytes are refunded exactly; in-flight
  /// views keep the arena alive but the next request rebuilds from the
  /// key, byte-identically to the original. Returns false when the key
  /// is not resident (already evicted/upgraded — not an error).
  bool Invalidate(const std::string& key);

  /// Counters for tests/benches and the CLI's `stats` query.
  struct Stats {
    std::uint64_t hits = 0;        ///< served from a resident arena
    std::uint64_t builds = 0;      ///< arena builds (misses + upgrades)
    std::uint64_t evictions = 0;   ///< budget-driven LRU removals
    std::uint64_t resident_arenas = 0;
    /// Charged ResidentBytes (what counts against the budget).
    std::uint64_t resident_bytes = 0;
    /// Logical MemoryBytes of the same arenas — the gap to
    /// resident_bytes is what compression/spilling saved.
    std::uint64_t total_bytes = 0;
    std::uint64_t budget_bytes = 0;
    /// Resident entries admitted below their requested τ (cancelled
    /// builds serving as degraded prefixes).
    std::uint64_t partial_arenas = 0;
    /// Entries force-dropped by Invalidate (scrubber-detected rot).
    std::uint64_t invalidations = 0;
  };
  Stats stats() const;

 private:
  /// One cache entry's build state: capacity is fixed at slot creation,
  /// the arena materializes exactly once via `once`.
  struct Slot {
    std::once_flag once;
    ArenaPtr arena;
    std::uint64_t capacity = 0;
    /// ContentChecksum taken right after the build, inside the
    /// once-section (outside mu_) — the scrubber's reference value.
    std::uint64_t checksum = 0;
    /// ResidentBytes snapshotted BEFORE the checksum walk: hashing a
    /// spilling backend faults chunks and warms hot lists, so charging
    /// must use the as-built residency, not the post-walk one.
    std::uint64_t admitted_resident_bytes = 0;
  };

  struct Entry {
    std::shared_ptr<Slot> slot;
    std::list<std::string>::iterator lru_pos;
    /// Bytes are only known after the build completes; `accounted`
    /// guards double-counting and marks the entry evictable.
    bool accounted = false;
    /// The ResidentBytes value charged at accounting time. Residency can
    /// drift afterwards (mmap chunk churn, hot-list warmup), so eviction
    /// refunds exactly what was charged to keep the ledger consistent.
    std::uint64_t charged_bytes = 0;
    /// True when the build came back short of its requested capacity
    /// (deadline-cancelled). Eviction under pressure prefers FULL
    /// arenas: a full arena rebuilds from its key byte-identically and
    /// eviction genuinely frees its RAM, while a partial prefix is
    /// typically freshly admitted with live degraded views still
    /// pointing at it — evicting it refunds the ledger but frees
    /// nothing until those views drain, and the next degraded request
    /// would find no prefix to serve from.
    bool partial = false;
  };

  /// Drops accounted LRU-tail entries (never `keep`) while over budget,
  /// preferring full (non-partial) victims; partial prefixes go only
  /// when no full victim remains.
  void EvictOverBudgetLocked(const std::string& keep);

  const std::uint64_t budget_bytes_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::map<std::string, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t builds_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t resident_bytes_ = 0;
};

}  // namespace serve
}  // namespace soldist

#endif  // SOLDIST_SERVE_ARENA_CACHE_H_
