// The influence-query service: microsecond point queries over immutable
// sampled-world arenas — the ROADMAP's serving layer.
//
// Shape: QueryService (on top of api::Session) resolves a workload to a
// per-(kind, network, prob, model, seed, stream-family) WorldArena held
// in one byte-budgeted ArenaCache — the cache key's leading component is
// the arena KIND, so RR-set arenas (View) and condensed-snapshot arenas
// (SnapshotView) share the budget without ever aliasing — then hands out
// immutable views. A QueryView answers Spread(S), MarginalGain(S, v),
// and TopK(k) directly from an RrArena's 32-bit vertex-major inverted
// index; a SnapshotQueryView answers those plus the sampled-world
// analytics RIS sketches cannot express — ReachProbability(src, dst) and
// ExpectedReach(v) — by walking condensed per-snapshot DAGs. No
// re-solve, no locks: every view method is const over shared immutable
// data, so any number of threads query concurrently (each thread brings
// its own QueryScratch/WorldScratch; convenience overloads use a
// thread_local one).
//
// The query kernel keeps sim/max_coverage.cc's word-packed covered
// bitmap (uint64 words, one bit per RR set) but resolves point queries
// with per-entry bit tests instead of the greedy engine's run-grouped
// popcount masks: at point-query densities (~1 inverted-list entry per
// word) the grouping machinery costs more than it amortizes — measured
// in bench/micro_kernels.cc, whose coverage_popcount kernels also show
// the packed bitmap beating GreeDIMM's
// TransposeRRRSets::calculateInfluence shape (per-vertex std::vectors +
// a byte-per-set marker array) by the layout alone. Clearing is
// adaptive: small marks are re-walked and zeroed entry by entry, large
// marks cleared with one contiguous fill — so the scratch never
// allocates after warm-up and tiny queries never pay a bitmap-sized
// wipe.
//
// Spread estimates follow RIS scaling: Spread(S) = n · |covered(S)| / τ,
// exactly the estimate a fresh RisEstimator at τ would produce for the
// same seeds — ctest query_service_test enforces the cross-check, and
// TopK(k) is byte-identical to GreedyMaxCoverage on a fresh build
// (prefix-closed streams, sim/rr_arena.h).

#ifndef SOLDIST_SERVE_QUERY_SERVICE_H_
#define SOLDIST_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/session.h"
#include "api/spec.h"
#include "serve/arena_cache.h"
#include "serve/resilience.h"
#include "serve/scrubber.h"
#include "sim/rr_arena.h"
#include "sim/snapshot_arena.h"
#include "store/arena_storage.h"
#include "store/recovery.h"
#include "util/status.h"

namespace soldist {
namespace serve {

/// What stands behind a QueryView: RR-set count, sampling seed, and the
/// sampling route (which selects the stream family — see
/// Session::SamplingFor). Defaults match the paper-scale τ = 2^16.
struct QuerySpec {
  /// RR sets the view answers from (τ). More sets = tighter estimates;
  /// the arena behind it is cached at the LARGEST τ requested so far and
  /// smaller τ are served as exact prefixes.
  std::uint64_t sample_number = std::uint64_t{1} << 16;
  /// Sampling master seed (the arena content is a pure function of it).
  std::uint64_t seed = 1;
  /// Worker count for the arena build (0 = shared pool at full width,
  /// 1 = sequential legacy streams, N >= 2 = dedicated pool).
  std::int64_t sample_threads = 1;
  /// Chunk size of the deterministic engine streams.
  std::uint64_t chunk_size = 256;
  /// Per-request deadline in milliseconds; 0 = use the session's
  /// default_deadline_ms (which defaults to unlimited). A request whose
  /// deadline expires mid-build is answered DEGRADED from the largest
  /// already-resident τ prefix (see QueryView::degraded) instead of
  /// blocking — serve/resilience.h documents the contract.
  std::uint64_t deadline_ms = 0;

  Status Validate() const;
};

/// \brief Per-thread query scratch: the covered bitmap, all-zero between
/// queries (QueryView clears exactly what it marked), so NO query
/// allocates after warm-up. Also carries the storage decode buffer for
/// non-flat arena backends (store/arena_storage.h) — compressed / mmap
/// inverted lists decode into it, so point queries on those backends
/// stay allocation-free after warm-up too.
class QueryScratch {
 public:
  QueryScratch() = default;
  QueryScratch(const QueryScratch&) = delete;
  QueryScratch& operator=(const QueryScratch&) = delete;

 private:
  friend class QueryView;
  std::vector<std::uint64_t> words_;  ///< covered bitmap, 1 bit/RR set
  store::StorageScratch storage_;     ///< decode buffer (non-flat backends)
};

/// TopK(k) output: greedy seeds with the per-seed marginal spread
/// estimates observed at selection time (RunGreedy's estimates column).
struct TopKResult {
  std::vector<VertexId> seeds;
  std::vector<double> estimates;
  std::uint64_t covered = 0;
  double spread = 0.0;
  /// False when a deadline CancelToken stopped CELF between rounds:
  /// seeds holds the completed prefix (>= 1 seed), byte-identical to a
  /// direct smaller-k solve — a DEGRADED answer in the serve/resilience.h
  /// sense, exact for the k it actually answers.
  bool completed = true;
};

/// \brief An immutable point-query view over the first `sample_number`
/// sets of a shared arena. Copyable (it co-owns the arena); every method
/// is const and lock-free — concurrency-safe by immutability.
class QueryView {
 public:
  /// Views are normally minted by QueryService::View; the public ctor
  /// exists for benches/tests that bring their own arena.
  /// `requested_tau` (0 = same as `count`) records what the caller asked
  /// for: when count < requested_tau the view is DEGRADED — an exact
  /// answer at the smaller τ it actually serves (prefix-closed streams),
  /// tagged so callers can tell a full answer from a best-effort one.
  QueryView(std::shared_ptr<const RrArena> arena, std::uint64_t count,
            std::uint64_t requested_tau = 0);

  /// Empty placeholder (StatusOr's error arm); querying one is a
  /// programmer error caught by SOLDIST_DCHECK.
  QueryView() = default;

  VertexId num_vertices() const { return arena_->num_vertices(); }
  std::uint64_t sample_number() const { return count_; }
  const RrArena& arena() const { return *arena_; }

  /// True when this view serves fewer sets than the request asked for
  /// (deadline miss or shed — see serve/resilience.h). Its answers are
  /// still exact RIS estimates at served_tau().
  bool degraded() const { return degraded_; }
  /// The τ the view actually answers at (== sample_number()).
  std::uint64_t served_tau() const { return count_; }
  /// The τ the request asked for (>= served_tau()).
  std::uint64_t requested_tau() const { return requested_tau_; }

  /// RIS spread estimate n · |covered(seeds)| / τ. O(Σ|list(v)| / 64)
  /// words touched; a single-seed query is O(log capacity) — the covered
  /// count is just the inverted-prefix length.
  double Spread(std::span<const VertexId> seeds, QueryScratch* scratch) const;
  double Spread(std::span<const VertexId> seeds) const;

  /// Marginal spread of adding v to seeds: n · |covered(S∪{v})−covered(S)|
  /// / τ — the quantity greedy maximizes at each step.
  double MarginalGain(std::span<const VertexId> seeds, VertexId v,
                      QueryScratch* scratch) const;
  double MarginalGain(std::span<const VertexId> seeds, VertexId v) const;

  /// RR sets covered by `seeds` (the un-scaled numerator of Spread).
  std::uint64_t CoveredCount(std::span<const VertexId> seeds,
                             QueryScratch* scratch) const;

  /// Greedy top-k seed selection over the view via the bucket-CELF
  /// word-packed engine (GreedyMaxCoverage), byte-identical to a fresh
  /// solve at τ. O(view) — reach for it when the ANSWER is a seed set;
  /// point queries stay on Spread/MarginalGain. `cancel` (usually armed
  /// from the request Deadline) is checked between CELF rounds: a fired
  /// token returns the completed seed prefix with completed = false —
  /// byte-identical to a direct smaller-k solve, never a partial round.
  TopKResult TopK(int k, const CancelToken* cancel = nullptr) const;

 private:
  /// The lazily cut inverted list of v (satellite: no O(n log capacity)
  /// RrPrefixView materialization on the point-query path; the
  /// full-arena case bypasses even the single binary search). Flat
  /// arenas return a zero-copy span; compressed/mmap backends decode
  /// into the caller's scratch (valid until its next List call — every
  /// use below finishes with one list before fetching the next).
  std::span<const std::uint32_t> List(VertexId v,
                                      QueryScratch* scratch) const {
    if (arena_->is_flat()) {
      return full_ ? arena_->InvertedAll(v)
                   : arena_->InvertedPrefix(v, count_);
    }
    return full_ ? arena_->InvertedAll(v, &scratch->storage_)
                 : arena_->InvertedPrefix(v, count_, &scratch->storage_);
  }

  /// Marks seeds' RR sets in the scratch bitmap, returning how many were
  /// newly covered. Accumulates across calls until ClearMarks.
  std::uint64_t MarkAndCount(std::span<const VertexId> seeds,
                             QueryScratch* scratch) const;
  /// Restores the all-zero invariant after MarkAndCount(seeds): re-walks
  /// small mark sets entry by entry, wipes the whole (view-sized) bitmap
  /// in one fill when the walk would touch a comparable word count.
  void ClearMarks(std::span<const VertexId> seeds,
                  QueryScratch* scratch) const;

  std::shared_ptr<const RrArena> arena_;
  std::uint64_t count_ = 0;
  std::uint64_t requested_tau_ = 0;
  bool full_ = false;      ///< count_ == arena capacity: no cut needed
  bool degraded_ = false;  ///< count_ < requested_tau_
};

/// \brief Per-thread scratch for sampled-world DAG walks: a generation-
/// stamped visited marker over component ids plus the BFS frontier.
/// Stamping makes per-world resets O(1) — one generation bump instead of
/// a clear — so a τ-world query pays traversal, never wiping.
class WorldScratch {
 public:
  WorldScratch() = default;
  WorldScratch(const WorldScratch&) = delete;
  WorldScratch& operator=(const WorldScratch&) = delete;

 private:
  friend class SnapshotQueryView;

  /// Ensures capacity and starts a fresh visit generation.
  void NextVisit(std::uint32_t num_components) {
    if (stamp_.size() < num_components) stamp_.resize(num_components, 0);
    if (++gen_ == 0) {  // wrapped: all stamps are stale, restart at 1
      std::fill(stamp_.begin(), stamp_.end(), 0);
      gen_ = 1;
    }
    queue_.clear();
  }
  bool Visit(std::uint32_t c) {
    if (stamp_[c] == gen_) return false;
    stamp_[c] = gen_;
    return true;
  }
  bool Visited(std::uint32_t c) const { return stamp_[c] == gen_; }

  std::vector<std::uint32_t> stamp_;
  std::uint32_t gen_ = 0;
  std::vector<std::uint32_t> queue_;  ///< BFS frontier of component ids
};

/// \brief An immutable sampled-world analytics view over the first
/// `sample_number` condensed snapshots of a shared SnapshotArena.
/// Copyable (it co-owns the arena); every method is const and lock-free.
///
/// Estimates follow Snapshot scaling: Spread(S) = (1/τ) Σ_i |R_i(S)|
/// where R_i(S) is the set of vertices reachable from S in sampled world
/// i — exactly the estimate a fresh condensed SnapshotEstimator at τ
/// would produce for the same seeds (ctest snapshot_arena_test enforces
/// the cross-check). ReachProbability and ExpectedReach are the
/// per-world analytics an RR-set collection cannot answer: they need the
/// worlds themselves, which only this arena kind retains.
class SnapshotQueryView {
 public:
  /// Views are normally minted by QueryService::SnapshotView; the public
  /// ctor exists for benches/tests that bring their own arena.
  /// `requested_tau` as in QueryView: 0 = same as `count`, and a view
  /// with count < requested_tau is tagged degraded.
  SnapshotQueryView(std::shared_ptr<const SnapshotArena> arena,
                    std::uint64_t count, std::uint64_t requested_tau = 0);

  /// Empty placeholder (StatusOr's error arm); querying one is a
  /// programmer error caught by SOLDIST_DCHECK.
  SnapshotQueryView() = default;

  VertexId num_vertices() const { return arena_->num_vertices(); }
  std::uint64_t sample_number() const { return count_; }
  const SnapshotArena& arena() const { return *arena_; }

  /// Degraded-answer tags; same contract as QueryView.
  bool degraded() const { return degraded_; }
  std::uint64_t served_tau() const { return count_; }
  std::uint64_t requested_tau() const { return requested_tau_; }

  /// Expected reached-vertex count of seed set S: (1/τ) Σ_i |R_i(S)|.
  /// One multi-source DAG BFS per world, component-granular.
  double Spread(std::span<const VertexId> seeds, WorldScratch* scratch) const;
  double Spread(std::span<const VertexId> seeds) const;

  /// Marginal spread of adding v to seeds:
  /// (1/τ) Σ_i (|R_i(S ∪ {v})| − |R_i(S)|).
  double MarginalGain(std::span<const VertexId> seeds, VertexId v,
                      WorldScratch* scratch) const;
  double MarginalGain(std::span<const VertexId> seeds, VertexId v) const;

  /// Expected size of v's reachable set: (1/τ) Σ_i |R_i(v)| — the REPL's
  /// `compsize` query. Equals Spread({v}).
  double ExpectedReach(VertexId v, WorldScratch* scratch) const;
  double ExpectedReach(VertexId v) const;

  /// Fraction of sampled worlds in which dst is reachable from src — the
  /// IC probability P[src influences dst], estimated over τ worlds.
  /// Per world: same-component is an O(1) hit; Tarjan's reverse-
  /// topological numbering (successor ids < component id) rejects
  /// comp(dst) > comp(src) without walking; otherwise an early-exit DAG
  /// BFS. The REPL's `reach` query.
  double ReachProbability(VertexId src, VertexId dst,
                          WorldScratch* scratch) const;
  double ReachProbability(VertexId src, VertexId dst) const;

  /// Greedy top-k seed selection over the view's worlds via a fresh
  /// ArenaSnapshotEstimator + RunGreedy — byte-identical to a fresh
  /// condensed SnapshotEstimator solve at τ with the same tie seed.
  /// TopKResult::covered holds Σ_i |R_i(S)| (the un-scaled numerator).
  TopKResult TopK(int k, std::uint64_t tie_seed = 1) const;

 private:
  /// Reached-vertex count of `seeds` in world i, marking visited
  /// components under the scratch's current generation (so a follow-up
  /// walk in the SAME generation counts only newly reached components).
  std::uint64_t ReachedInWorld(std::uint64_t i,
                               std::span<const VertexId> seeds,
                               WorldScratch* scratch) const;

  std::shared_ptr<const SnapshotArena> arena_;
  std::uint64_t count_ = 0;
  std::uint64_t requested_tau_ = 0;
  bool degraded_ = false;  ///< count_ < requested_tau_
};

/// \brief The service: Session-resolved workloads → cached arenas →
/// QueryViews. Thread-safe; see ArenaCache for the eviction contract
/// and serve/resilience.h for the deadline / degraded-answer / shedding
/// contract this service implements:
///
///  * A request whose deadline expires (or that is shed by admission
///    control) while its arena is not yet resident is answered DEGRADED
///    from the largest already-resident prefix of the same stream when
///    one exists — exact at served_tau(), tagged degraded() — and only
///    fails (kDeadlineExceeded / kUnavailable) when NOTHING is resident.
///  * A deadline that expires mid-build cancels the build cooperatively
///    (sim/ CancelToken); the truncated prefix is admitted to the cache
///    at its actual τ and served degraded. Partial arenas are never
///    persisted to disk.
///  * Persistence IO (arena load/save) retries transient kIoError under
///    a bounded-backoff RetryPolicy before degrading to resample /
///    serve-unpersisted.
class QueryService {
 public:
  /// The cache budget comes from the session's
  /// SessionOptions::arena_budget_bytes (0 = unlimited); admission
  /// bounds and the default deadline come from max_inflight_builds /
  /// max_queued_builds / default_deadline_ms. The session must outlive
  /// the service.
  explicit QueryService(api::Session* session);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Resolves the workload (Status on unknown network / invalid model
  /// combination — never a CHECK) and returns a view of τ =
  /// spec.sample_number RR sets. The cache key deliberately EXCLUDES τ:
  /// prefix-closed streams mean one arena at the largest τ seen serves
  /// every smaller τ as a byte-identical prefix, so repeat views are
  /// pure cache hits.
  StatusOr<QueryView> View(const api::WorkloadSpec& workload,
                           const QuerySpec& spec = {});

  /// Sampled-world analytics view over τ = spec.sample_number condensed
  /// snapshots. IC only — LT snapshots have no condensed arena form, and
  /// asking for one is a Status, never an abort. Same τ-excluding key
  /// discipline as View; the kind prefix keeps the two arena families
  /// from ever aliasing in the shared cache.
  StatusOr<SnapshotQueryView> SnapshotView(const api::WorkloadSpec& workload,
                                           const QuerySpec& spec = {});

  ArenaCache::Stats cache_stats() const { return cache_.stats(); }

  /// Snapshot of the degraded/shed/retry/deadline counters (REPL
  /// `stats` surfaces these next to cache_stats).
  ResilienceStats resilience_stats() const;

  /// What the crash-consistency startup sweep (store/recovery.h) found
  /// and did in the session's arena_dir when this service came up. An
  /// all-zero report when arena_dir is unset or the sweep itself failed
  /// (the failure is logged — serving proceeds either way; persistence
  /// never fails a query).
  const store::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  /// Monotone counters of the background integrity scrubber
  /// (serve/scrubber.h; cadence = SessionOptions::scrub_interval_ms,
  /// 0 = time-driven scrubbing off).
  ScrubStats scrub_stats() const;

  /// One full synchronous scrub rotation — every resident arena re-
  /// hashed, every persisted entry re-verified (REPL `scrub`; tests).
  void RunScrubCycle();

 private:
  /// One key format for both arena families: kind # workload label #
  /// seed # stream family. τ is deliberately absent (see View).
  static std::string CacheKey(ArenaKind kind,
                              const api::WorkloadSpec& workload,
                              const QuerySpec& spec,
                              const SamplingOptions& sampling);

  /// The request deadline: spec.deadline_ms, else the session default,
  /// else unlimited.
  Deadline DeadlineFor(const QuerySpec& spec) const;

  api::Session* session_;
  ArenaCache cache_;
  AdmissionController admission_;
  RetryPolicy retry_policy_;
  /// Startup-sweep outcome (empty when arena_dir is unset).
  store::RecoveryReport recovery_report_;
  /// Always constructed (the resident pass needs no directory); its
  /// timer thread only starts when scrub_interval_ms > 0. Declared after
  /// cache_ so it is destroyed FIRST — no scrub touches a dead cache.
  std::unique_ptr<Scrubber> scrubber_;
  std::atomic<std::uint64_t> degraded_answers_{0};
  std::atomic<std::uint64_t> shed_requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};
  /// Serializes pool-routed arena builds: the session pools have a
  /// single-waiter contract, so two concurrent engine builds may not
  /// fan out at once. Sequential (sample_threads == 1) builds skip it.
  std::mutex build_mu_;
};

}  // namespace serve
}  // namespace soldist

#endif  // SOLDIST_SERVE_QUERY_SERVICE_H_
