#include "serve/query_service.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "core/greedy.h"
#include "core/snapshot.h"
#include "random/rng.h"
#include "sim/max_coverage.h"
#include "store/arena_io.h"
#include "util/logging.h"

namespace soldist {
namespace serve {
namespace {

/// The scratch behind the convenience overloads: one per querying
/// thread, reused across queries (the whole point — no allocation on
/// the hot path after warm-up).
QueryScratch* LocalScratch() {
  thread_local QueryScratch scratch;
  return &scratch;
}

WorldScratch* LocalWorldScratch() {
  thread_local WorldScratch scratch;
  return &scratch;
}

/// The manifest's stream-family name — the same component CacheKey
/// appends, so a persisted arena's identity mirrors its cache key.
std::string StreamName(const SamplingOptions& sampling) {
  return sampling.UseEngine()
             ? "engine/" + std::to_string(sampling.chunk_size)
             : "seq";
}

/// The persistence directory of one cache key under the session's
/// arena_dir ("" = persistence off). Key characters outside
/// [A-Za-z0-9._-] become '_' so the key is a safe single path segment;
/// collisions are harmless — the manifest identity check catches them
/// and the loser simply resamples.
std::string ArenaDirFor(const std::string& root, const std::string& key) {
  if (root.empty()) return "";
  std::string segment;
  segment.reserve(key.size());
  for (char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
    segment.push_back(safe ? c : '_');
  }
  return root + "/" + segment;
}

/// A failed load is a rebuild, never an error — but say why when the
/// file existed and did not serve (corruption, version skew, identity
/// mismatch). A clean miss (kNotFound) stays silent.
void WarnUnlessNotFound(const char* what, const Status& status) {
  if (status.code() == StatusCode::kNotFound) return;
  SOLDIST_LOG(Warning) << what << ": " << status.ToString();
}

}  // namespace

Status QuerySpec::Validate() const {
  if (sample_number < 1) {
    return Status::InvalidArgument("QuerySpec: sample_number must be >= 1");
  }
  if (sample_number > std::uint64_t{std::numeric_limits<std::uint32_t>::max()}) {
    return Status::InvalidArgument(
        "QuerySpec: sample_number exceeds the arena's 32-bit set ids");
  }
  if (chunk_size < 1) {
    return Status::InvalidArgument("QuerySpec: chunk_size must be >= 1");
  }
  return Status::OK();
}

QueryView::QueryView(std::shared_ptr<const RrArena> arena,
                     std::uint64_t count, std::uint64_t requested_tau)
    : arena_(std::move(arena)),
      count_(count),
      requested_tau_(requested_tau == 0 ? count : requested_tau) {
  SOLDIST_CHECK(arena_ != nullptr);
  SOLDIST_CHECK(count_ >= 1);
  SOLDIST_CHECK(count_ <= arena_->capacity())
      << "view of " << count_ << " sets exceeds arena capacity "
      << arena_->capacity();
  SOLDIST_CHECK(requested_tau_ >= count_)
      << "requested_tau " << requested_tau_ << " below served count "
      << count_;
  full_ = count_ == arena_->capacity();
  degraded_ = count_ < requested_tau_;
}

std::uint64_t QueryView::MarkAndCount(std::span<const VertexId> seeds,
                                      QueryScratch* scratch) const {
  std::vector<std::uint64_t>& words = scratch->words_;
  const std::size_t need = static_cast<std::size_t>((count_ + 63) / 64);
  if (words.size() < need) words.resize(need, 0);
  std::uint64_t newly_covered = 0;
  for (VertexId v : seeds) {
    SOLDIST_DCHECK(v < num_vertices());
    // Per-entry bit test on the packed bitmap. The greedy engine's
    // run-grouped mask+popcount idiom loses here: real inverted lists
    // run ~1 entry per 64-set word at point-query densities, so the
    // grouping loop costs more than the popcounts it saves (measured in
    // bench/micro_kernels.cc, coverage_popcount).
    for (std::uint32_t id : List(v, scratch)) {
      std::uint64_t& word = words[id >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (id & 63);
      newly_covered += static_cast<std::uint64_t>((word & bit) == 0);
      word |= bit;
    }
  }
  return newly_covered;
}

void QueryView::ClearMarks(std::span<const VertexId> seeds,
                           QueryScratch* scratch) const {
  const std::size_t need = static_cast<std::size_t>((count_ + 63) / 64);
  std::uint64_t entries = 0;
  for (VertexId v : seeds) entries += List(v, scratch).size();
  if (entries >= static_cast<std::uint64_t>(need / 8)) {
    // Dense mark: one contiguous fill of the view-sized bitmap beats
    // scattered stores (a fill retires many words per cycle).
    std::fill_n(scratch->words_.begin(), need, std::uint64_t{0});
    return;
  }
  // Sparse mark on a large bitmap (big τ, short lists): re-walk exactly
  // the words the mark pass wrote instead of wiping the whole bitmap.
  for (VertexId v : seeds) {
    for (std::uint32_t id : List(v, scratch)) scratch->words_[id >> 6] = 0;
  }
}

std::uint64_t QueryView::CoveredCount(std::span<const VertexId> seeds,
                                      QueryScratch* scratch) const {
  if (seeds.empty()) return 0;
  if (seeds.size() == 1) {
    // The commonest point query needs no bitmap at all: one vertex's
    // covered count IS its inverted-prefix length.
    SOLDIST_DCHECK(seeds[0] < num_vertices());
    return static_cast<std::uint64_t>(List(seeds[0], scratch).size());
  }
  const std::uint64_t covered = MarkAndCount(seeds, scratch);
  ClearMarks(seeds, scratch);
  return covered;
}

double QueryView::Spread(std::span<const VertexId> seeds,
                         QueryScratch* scratch) const {
  return static_cast<double>(num_vertices()) *
         static_cast<double>(CoveredCount(seeds, scratch)) /
         static_cast<double>(count_);
}

double QueryView::Spread(std::span<const VertexId> seeds) const {
  return Spread(seeds, LocalScratch());
}

double QueryView::MarginalGain(std::span<const VertexId> seeds, VertexId v,
                               QueryScratch* scratch) const {
  std::uint64_t gain;
  if (seeds.empty()) {
    SOLDIST_DCHECK(v < num_vertices());
    gain = static_cast<std::uint64_t>(List(v, scratch).size());
  } else {
    SOLDIST_DCHECK(v < num_vertices());
    MarkAndCount(seeds, scratch);
    // Count v's not-yet-covered sets read-only — nothing new is marked,
    // so the clear pass only has to undo `seeds`.
    gain = 0;
    for (std::uint32_t id : List(v, scratch)) {
      gain += static_cast<std::uint64_t>(
          (scratch->words_[id >> 6] >> (id & 63) & 1) == 0);
    }
    ClearMarks(seeds, scratch);
  }
  return static_cast<double>(num_vertices()) * static_cast<double>(gain) /
         static_cast<double>(count_);
}

double QueryView::MarginalGain(std::span<const VertexId> seeds,
                               VertexId v) const {
  return MarginalGain(seeds, v, LocalScratch());
}

TopKResult QueryView::TopK(int k, const CancelToken* cancel) const {
  SOLDIST_CHECK(k >= 1);
  // Selection runs the production bucket-CELF engine over a prefix view
  // (its ctor seeds the queue from the cut lengths / CoverCounts).
  MaxCoverageResult mc = GreedyMaxCoverage(arena_->Prefix(count_), k, cancel);
  TopKResult result;
  result.completed = mc.completed;
  result.covered = mc.covered;
  result.spread = static_cast<double>(num_vertices()) *
                  static_cast<double>(mc.covered) /
                  static_cast<double>(count_);
  result.seeds = std::move(mc.seeds);
  // Replay the selection on the scratch bitmap to recover the per-seed
  // marginal estimates greedy observed (RunGreedy's estimates column):
  // estimate_i = n · (sets newly covered by seed i) / τ.
  QueryScratch* scratch = LocalScratch();
  result.estimates.reserve(result.seeds.size());
  std::uint64_t replayed = 0;
  for (VertexId seed : result.seeds) {
    const std::uint64_t gain = MarkAndCount({&seed, 1}, scratch);
    replayed += gain;
    result.estimates.push_back(static_cast<double>(num_vertices()) *
                               static_cast<double>(gain) /
                               static_cast<double>(count_));
  }
  ClearMarks(result.seeds, scratch);
  SOLDIST_DCHECK(replayed == result.covered);
  return result;
}

SnapshotQueryView::SnapshotQueryView(
    std::shared_ptr<const SnapshotArena> arena, std::uint64_t count,
    std::uint64_t requested_tau)
    : arena_(std::move(arena)),
      count_(count),
      requested_tau_(requested_tau == 0 ? count : requested_tau) {
  SOLDIST_CHECK(arena_ != nullptr);
  SOLDIST_CHECK(count_ >= 1);
  SOLDIST_CHECK(count_ <= arena_->capacity())
      << "view of " << count_ << " worlds exceeds arena capacity "
      << arena_->capacity();
  SOLDIST_CHECK(requested_tau_ >= count_)
      << "requested_tau " << requested_tau_ << " below served count "
      << count_;
  degraded_ = count_ < requested_tau_;
}

std::uint64_t SnapshotQueryView::ReachedInWorld(
    std::uint64_t i, std::span<const VertexId> seeds,
    WorldScratch* scratch) const {
  const CondensedSnapshot& world = arena_->World(i);
  std::uint64_t reached = 0;
  // Process only what THIS walk enqueues: a caller that re-walks under
  // the same generation (MarginalGain) extends the frontier from here.
  std::size_t head = scratch->queue_.size();
  for (VertexId s : seeds) {
    SOLDIST_DCHECK(s < num_vertices());
    const std::uint32_t c = world.comp_of[s];
    if (scratch->Visit(c)) {
      scratch->queue_.push_back(c);
      reached += world.comp_size[c];
    }
  }
  while (head < scratch->queue_.size()) {
    const std::uint32_t c = scratch->queue_[head++];
    for (std::uint32_t succ : world.dag.Successors(c)) {
      if (scratch->Visit(succ)) {
        scratch->queue_.push_back(succ);
        reached += world.comp_size[succ];
      }
    }
  }
  return reached;
}

double SnapshotQueryView::Spread(std::span<const VertexId> seeds,
                                 WorldScratch* scratch) const {
  if (seeds.empty()) return 0.0;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < count_; ++i) {
    scratch->NextVisit(arena_->max_components());
    total += ReachedInWorld(i, seeds, scratch);
  }
  return static_cast<double>(total) / static_cast<double>(count_);
}

double SnapshotQueryView::Spread(std::span<const VertexId> seeds) const {
  return Spread(seeds, LocalWorldScratch());
}

double SnapshotQueryView::MarginalGain(std::span<const VertexId> seeds,
                                       VertexId v,
                                       WorldScratch* scratch) const {
  SOLDIST_DCHECK(v < num_vertices());
  std::uint64_t gain = 0;
  for (std::uint64_t i = 0; i < count_; ++i) {
    scratch->NextVisit(arena_->max_components());
    // Mark S's reachable components, then count only what v adds — the
    // second walk runs under the SAME generation, so already-reached
    // components contribute nothing.
    ReachedInWorld(i, seeds, scratch);
    gain += ReachedInWorld(i, {&v, 1}, scratch);
  }
  return static_cast<double>(gain) / static_cast<double>(count_);
}

double SnapshotQueryView::MarginalGain(std::span<const VertexId> seeds,
                                       VertexId v) const {
  return MarginalGain(seeds, v, LocalWorldScratch());
}

double SnapshotQueryView::ExpectedReach(VertexId v,
                                        WorldScratch* scratch) const {
  return Spread({&v, 1}, scratch);
}

double SnapshotQueryView::ExpectedReach(VertexId v) const {
  return ExpectedReach(v, LocalWorldScratch());
}

double SnapshotQueryView::ReachProbability(VertexId src, VertexId dst,
                                           WorldScratch* scratch) const {
  SOLDIST_DCHECK(src < num_vertices());
  SOLDIST_DCHECK(dst < num_vertices());
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < count_; ++i) {
    const CondensedSnapshot& world = arena_->World(i);
    const std::uint32_t cs = world.comp_of[src];
    const std::uint32_t cd = world.comp_of[dst];
    if (cs == cd) {
      ++hits;
      continue;
    }
    // Tarjan numbering is reverse-topological: ids strictly DECREASE
    // along every DAG path, so cd > cs is unreachable without a walk,
    // and any intermediate component on a cs→cd path lies in (cd, cs] —
    // successors below cd are dead ends and are never enqueued.
    if (cd > cs) continue;
    scratch->NextVisit(arena_->max_components());
    scratch->Visit(cs);
    scratch->queue_.push_back(cs);
    std::size_t head = 0;
    bool found = false;
    while (!found && head < scratch->queue_.size()) {
      const std::uint32_t c = scratch->queue_[head++];
      for (std::uint32_t succ : world.dag.Successors(c)) {
        if (succ == cd) {
          found = true;
          break;
        }
        if (succ < cd) continue;
        if (scratch->Visit(succ)) scratch->queue_.push_back(succ);
      }
    }
    if (found) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(count_);
}

double SnapshotQueryView::ReachProbability(VertexId src, VertexId dst) const {
  return ReachProbability(src, dst, LocalWorldScratch());
}

TopKResult SnapshotQueryView::TopK(int k, std::uint64_t tie_seed) const {
  SOLDIST_CHECK(k >= 1);
  // A fresh arena estimator + the production greedy loop: byte-identical
  // seed sets to a fresh condensed SnapshotEstimator solve at τ with the
  // same tie seed (the estimator serves warm state from the arena).
  ArenaSnapshotEstimator estimator(arena_.get(), count_);
  Rng tie_rng(tie_seed);
  GreedyRunResult run =
      RunGreedy(&estimator, num_vertices(), k, &tie_rng);
  TopKResult result;
  result.seeds = std::move(run.seeds);
  result.estimates = std::move(run.estimates);
  // The un-scaled numerator Σ_i |R_i(S)| and the scaled spread.
  WorldScratch* scratch = LocalWorldScratch();
  std::uint64_t covered = 0;
  for (std::uint64_t i = 0; i < count_; ++i) {
    scratch->NextVisit(arena_->max_components());
    covered += ReachedInWorld(i, result.seeds, scratch);
  }
  result.covered = covered;
  result.spread =
      static_cast<double>(covered) / static_cast<double>(count_);
  return result;
}

QueryService::QueryService(api::Session* session)
    : session_(session),
      cache_(session->options().arena_budget_bytes),
      admission_(session->options().max_inflight_builds,
                 session->options().max_queued_builds) {
  SOLDIST_CHECK(session_ != nullptr);
  const std::string& arena_dir = session_->options().arena_dir;
  if (!arena_dir.empty()) {
    // Crash-consistency startup sweep: clear interrupted-save debris and
    // quarantine corrupt entries BEFORE the first load can see them. A
    // failed sweep is logged, never fatal — persistence cannot fail a
    // query, and every load still verifies what it reads.
    StatusOr<store::RecoveryReport> swept = store::RecoverArenaDir(arena_dir);
    if (swept.ok()) {
      recovery_report_ = std::move(swept).value();
    } else {
      SOLDIST_LOG(Warning) << "arena-dir recovery sweep failed: "
                           << swept.status().ToString();
    }
  }
  scrubber_ = std::make_unique<Scrubber>(
      &cache_, arena_dir, session_->options().scrub_interval_ms);
  scrubber_->Start();
}

ScrubStats QueryService::scrub_stats() const { return scrubber_->stats(); }

void QueryService::RunScrubCycle() { scrubber_->ScrubAll(); }

Deadline QueryService::DeadlineFor(const QuerySpec& spec) const {
  const std::uint64_t ms = spec.deadline_ms != 0
                               ? spec.deadline_ms
                               : session_->options().default_deadline_ms;
  return ms == 0 ? Deadline() : Deadline::AfterMillis(ms);
}

ResilienceStats QueryService::resilience_stats() const {
  ResilienceStats stats;
  stats.degraded_answers = degraded_answers_.load(std::memory_order_relaxed);
  stats.shed_requests = shed_requests_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  return stats;
}

StatusOr<QueryView> QueryService::View(const api::WorkloadSpec& workload,
                                       const QuerySpec& spec) {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  StatusOr<ModelInstance> instance = session_->ResolveWorkload(workload);
  if (!instance.ok()) return instance.status();
  SamplingOptions sampling =
      session_->SamplingFor(spec.sample_threads, spec.chunk_size);
  // The key is everything that shapes arena CONTENT except its capacity:
  // arena KIND (the shared cache holds RR-set and snapshot arenas side
  // by side), workload label (network/prob/model), seed, and the stream
  // family (legacy sequential vs chunked engine at a chunk size — see
  // sim/rr_arena.h). Capacity is a lower bound, not an identity, so one
  // arena at the largest τ seen serves every smaller τ as a prefix.
  std::string key = CacheKey(ArenaKind::kRr, workload, spec, sampling);
  const Deadline deadline = DeadlineFor(spec);
  // Fast path: fully resident at τ — no admission, no deadline machinery.
  if (ArenaCache::ArenaPtr hit = cache_.TryGet(key, spec.sample_number)) {
    return QueryView(
        std::static_pointer_cast<const RrArena>(std::move(hit)),
        spec.sample_number);
  }
  // A build is needed: admission-control it so overload sheds instead of
  // stacking builder threads. A shed or queue-timeout request still
  // answers DEGRADED when any prefix of this stream is already resident.
  StatusOr<AdmissionController::Ticket> ticket = admission_.Admit(deadline);
  if (!ticket.ok()) {
    if (ticket.status().code() == StatusCode::kUnavailable) {
      shed_requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    ArenaCache::ArenaPtr resident = cache_.LookupResident(key);
    if (resident == nullptr) return ticket.status();
    std::shared_ptr<const RrArena> rr =
        std::static_pointer_cast<const RrArena>(std::move(resident));
    const std::uint64_t served =
        std::min<std::uint64_t>(spec.sample_number, rr->capacity());
    if (served < spec.sample_number) {
      degraded_answers_.fetch_add(1, std::memory_order_relaxed);
    }
    return QueryView(std::move(rr), served, spec.sample_number);
  }
  const ModelInstance resolved = instance.value();
  // Deadline-bound cooperative cancel: the sampler checks the token at
  // chunk granularity and a cancelled build truncates to its completed
  // prefix — a byte-identical direct smaller build (sim/rr_arena.h).
  CancelToken cancel([deadline] { return deadline.expired(); });
  if (!deadline.unlimited()) sampling.cancel = &cancel;
  // One request-shared IO attempt pool: the builder's load AND save draw
  // from it, so the request's worst-case IO stall is bounded once, not
  // per operation (RetryPolicy::request_budget).
  RetryBudget io_budget(retry_policy_.request_budget);
  RetryBudget* const budget =
      retry_policy_.request_budget > 0 ? &io_budget : nullptr;
  const ArenaCache::Builder builder =
      [&](std::uint64_t capacity) -> ArenaCache::ArenaPtr {
    // Persistence (session arena_dir set): load a saved arena whose
    // identity matches this key, else sample and save for the next
    // process. Load/save failures degrade to sampling/serving —
    // persistence can never fail a query — but transient IO errors
    // (kIoError) retry under backoff first, clipped to the deadline.
    const std::string dir = ArenaDirFor(session_->options().arena_dir, key);
    store::ArenaManifest expected;
    expected.kind = "rr";
    expected.workload = workload.Label();
    expected.seed = spec.seed;
    expected.stream = StreamName(sampling);
    expected.capacity = capacity;
    std::shared_ptr<RrArena> built;
    if (!dir.empty()) {
      Status load = RetryWithBackoff(
          retry_policy_, deadline,
          [&]() -> Status {
            StatusOr<std::shared_ptr<RrArena>> loaded =
                store::LoadRrArena(dir, expected);
            if (!loaded.ok()) return loaded.status();
            built = std::move(loaded).value();
            return Status::OK();
          },
          &retries_, /*sleep=*/{}, budget);
      if (!load.ok()) {
        WarnUnlessNotFound("arena load failed (resampling)", load);
      }
    }
    if (built == nullptr) {
      if (sampling.pool == nullptr) {
        built = std::make_shared<RrArena>(
            RrArena::SampleFor(resolved, spec.seed, capacity, sampling));
      } else {
        // Pool-routed build: respect the pools' single-waiter
        // contract.
        std::lock_guard<std::mutex> lock(build_mu_);
        built = std::make_shared<RrArena>(
            RrArena::SampleFor(resolved, spec.seed, capacity, sampling));
      }
      // Persist only COMPLETE builds: a deadline-truncated prefix on
      // disk would shadow the full arena for every later process.
      if (!dir.empty() && built->capacity() == capacity) {
        Status saved = RetryWithBackoff(
            retry_policy_, deadline,
            [&] { return store::SaveRrArena(*built, expected, dir); },
            &retries_, /*sleep=*/{}, budget);
        if (!saved.ok()) {
          SOLDIST_LOG(Warning) << "arena save failed (serving "
                                  "unpersisted): " << saved.ToString();
        }
      }
    }
    // Convert AFTER save: payloads persist flat, backends reshape in
    // RAM. Conversion never changes an answer; failure keeps flat.
    const store::StorageOptions& storage = session_->options().arena_storage;
    if (storage.backend != store::ArenaBackend::kFlat) {
      Status converted = built->ConvertStorage(storage);
      if (!converted.ok()) {
        SOLDIST_LOG(Warning)
            << "cached arena stays flat: " << converted.ToString();
      }
    }
    return built;
  };
  // Two attempts: a caller can rendezvous on ANOTHER request's build
  // that was cancelled at ITS deadline; when this caller's own deadline
  // still has time, the partial entry (admitted at its actual τ) is
  // upgraded by a second build instead of answering short for no reason.
  ArenaCache::ArenaPtr arena;
  for (int attempt = 0; attempt < 2; ++attempt) {
    arena = cache_.GetOrBuild(key, spec.sample_number, builder);
    if (arena->capacity() >= spec.sample_number || deadline.expired()) break;
  }
  std::shared_ptr<const RrArena> rr =
      std::static_pointer_cast<const RrArena>(std::move(arena));
  const std::uint64_t served =
      std::min<std::uint64_t>(spec.sample_number, rr->capacity());
  if (served < spec.sample_number) {
    degraded_answers_.fetch_add(1, std::memory_order_relaxed);
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  // The kind-prefixed key guarantees what stands behind it.
  return QueryView(std::move(rr), served, spec.sample_number);
}

StatusOr<SnapshotQueryView> QueryService::SnapshotView(
    const api::WorkloadSpec& workload, const QuerySpec& spec) {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  StatusOr<ModelInstance> instance = session_->ResolveWorkload(workload);
  if (!instance.ok()) return instance.status();
  if (instance.value().model != DiffusionModel::kIc) {
    return Status::InvalidArgument(
        "sampled-world views require the IC model: LT snapshots have no "
        "condensed arena form (workload " + workload.Label() + ")");
  }
  SamplingOptions sampling =
      session_->SamplingFor(spec.sample_threads, spec.chunk_size);
  std::string key = CacheKey(ArenaKind::kSnapshot, workload, spec, sampling);
  const Deadline deadline = DeadlineFor(spec);
  if (ArenaCache::ArenaPtr hit = cache_.TryGet(key, spec.sample_number)) {
    return SnapshotQueryView(
        std::static_pointer_cast<const SnapshotArena>(std::move(hit)),
        spec.sample_number);
  }
  // Same admission / degraded-answer discipline as View.
  StatusOr<AdmissionController::Ticket> ticket = admission_.Admit(deadline);
  if (!ticket.ok()) {
    if (ticket.status().code() == StatusCode::kUnavailable) {
      shed_requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    ArenaCache::ArenaPtr resident = cache_.LookupResident(key);
    if (resident == nullptr) return ticket.status();
    std::shared_ptr<const SnapshotArena> snap =
        std::static_pointer_cast<const SnapshotArena>(std::move(resident));
    const std::uint64_t served =
        std::min<std::uint64_t>(spec.sample_number, snap->capacity());
    if (served < spec.sample_number) {
      degraded_answers_.fetch_add(1, std::memory_order_relaxed);
    }
    return SnapshotQueryView(std::move(snap), served, spec.sample_number);
  }
  const ModelInstance resolved = instance.value();
  CancelToken cancel([deadline] { return deadline.expired(); });
  if (!deadline.unlimited()) sampling.cancel = &cancel;
  // Request-shared IO attempt pool, exactly as in View.
  RetryBudget io_budget(retry_policy_.request_budget);
  RetryBudget* const budget =
      retry_policy_.request_budget > 0 ? &io_budget : nullptr;
  const ArenaCache::Builder builder =
      [&](std::uint64_t capacity) -> ArenaCache::ArenaPtr {
    // Same persistence discipline as the RR builder; snapshot arenas
    // have no alternate storage backends, so no conversion step.
    const std::string dir = ArenaDirFor(session_->options().arena_dir, key);
    store::ArenaManifest expected;
    expected.kind = "snapshot";
    expected.workload = workload.Label();
    expected.seed = spec.seed;
    expected.stream = StreamName(sampling);
    expected.capacity = capacity;
    std::shared_ptr<SnapshotArena> built;
    if (!dir.empty()) {
      Status load = RetryWithBackoff(
          retry_policy_, deadline,
          [&]() -> Status {
            StatusOr<std::shared_ptr<SnapshotArena>> loaded =
                store::LoadSnapshotArena(dir, expected);
            if (!loaded.ok()) return loaded.status();
            built = std::move(loaded).value();
            return Status::OK();
          },
          &retries_, /*sleep=*/{}, budget);
      if (!load.ok()) {
        WarnUnlessNotFound("arena load failed (resampling)", load);
      }
      if (built != nullptr) return built;
    }
    if (sampling.pool == nullptr) {
      built = std::make_shared<SnapshotArena>(SnapshotArena::Sample(
          *resolved.ig, spec.seed, capacity, sampling));
    } else {
      std::lock_guard<std::mutex> lock(build_mu_);
      built = std::make_shared<SnapshotArena>(SnapshotArena::Sample(
          *resolved.ig, spec.seed, capacity, sampling));
    }
    if (!dir.empty() && built->capacity() == capacity) {
      Status saved = RetryWithBackoff(
          retry_policy_, deadline,
          [&] { return store::SaveSnapshotArena(*built, expected, dir); },
          &retries_, /*sleep=*/{}, budget);
      if (!saved.ok()) {
        SOLDIST_LOG(Warning) << "arena save failed (serving "
                                "unpersisted): " << saved.ToString();
      }
    }
    return built;
  };
  ArenaCache::ArenaPtr arena;
  for (int attempt = 0; attempt < 2; ++attempt) {
    arena = cache_.GetOrBuild(key, spec.sample_number, builder);
    if (arena->capacity() >= spec.sample_number || deadline.expired()) break;
  }
  std::shared_ptr<const SnapshotArena> snap =
      std::static_pointer_cast<const SnapshotArena>(std::move(arena));
  const std::uint64_t served =
      std::min<std::uint64_t>(spec.sample_number, snap->capacity());
  if (served < spec.sample_number) {
    degraded_answers_.fetch_add(1, std::memory_order_relaxed);
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return SnapshotQueryView(std::move(snap), served, spec.sample_number);
}

std::string QueryService::CacheKey(ArenaKind kind,
                                   const api::WorkloadSpec& workload,
                                   const QuerySpec& spec,
                                   const SamplingOptions& sampling) {
  std::string key = std::string(ArenaKindName(kind)) + "#" +
                    workload.Label() + "#seed=" + std::to_string(spec.seed);
  key += sampling.UseEngine()
             ? "#engine/" + std::to_string(sampling.chunk_size)
             : "#seq";
  return key;
}

}  // namespace serve
}  // namespace soldist
