#include "serve/query_service.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "sim/max_coverage.h"
#include "util/logging.h"

namespace soldist {
namespace serve {
namespace {

/// The scratch behind the convenience overloads: one per querying
/// thread, reused across queries (the whole point — no allocation on
/// the hot path after warm-up).
QueryScratch* LocalScratch() {
  thread_local QueryScratch scratch;
  return &scratch;
}

}  // namespace

Status QuerySpec::Validate() const {
  if (sample_number < 1) {
    return Status::InvalidArgument("QuerySpec: sample_number must be >= 1");
  }
  if (sample_number > std::uint64_t{std::numeric_limits<std::uint32_t>::max()}) {
    return Status::InvalidArgument(
        "QuerySpec: sample_number exceeds the arena's 32-bit set ids");
  }
  if (chunk_size < 1) {
    return Status::InvalidArgument("QuerySpec: chunk_size must be >= 1");
  }
  return Status::OK();
}

QueryView::QueryView(std::shared_ptr<const RrArena> arena,
                     std::uint64_t count)
    : arena_(std::move(arena)), count_(count) {
  SOLDIST_CHECK(arena_ != nullptr);
  SOLDIST_CHECK(count_ >= 1);
  SOLDIST_CHECK(count_ <= arena_->capacity())
      << "view of " << count_ << " sets exceeds arena capacity "
      << arena_->capacity();
  full_ = count_ == arena_->capacity();
}

std::uint64_t QueryView::MarkAndCount(std::span<const VertexId> seeds,
                                      QueryScratch* scratch) const {
  std::vector<std::uint64_t>& words = scratch->words_;
  const std::size_t need = static_cast<std::size_t>((count_ + 63) / 64);
  if (words.size() < need) words.resize(need, 0);
  std::uint64_t newly_covered = 0;
  for (VertexId v : seeds) {
    SOLDIST_DCHECK(v < num_vertices());
    // Per-entry bit test on the packed bitmap. The greedy engine's
    // run-grouped mask+popcount idiom loses here: real inverted lists
    // run ~1 entry per 64-set word at point-query densities, so the
    // grouping loop costs more than the popcounts it saves (measured in
    // bench/micro_kernels.cc, coverage_popcount).
    for (std::uint32_t id : List(v)) {
      std::uint64_t& word = words[id >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (id & 63);
      newly_covered += static_cast<std::uint64_t>((word & bit) == 0);
      word |= bit;
    }
  }
  return newly_covered;
}

void QueryView::ClearMarks(std::span<const VertexId> seeds,
                           QueryScratch* scratch) const {
  const std::size_t need = static_cast<std::size_t>((count_ + 63) / 64);
  std::uint64_t entries = 0;
  for (VertexId v : seeds) entries += List(v).size();
  if (entries >= static_cast<std::uint64_t>(need / 8)) {
    // Dense mark: one contiguous fill of the view-sized bitmap beats
    // scattered stores (a fill retires many words per cycle).
    std::fill_n(scratch->words_.begin(), need, std::uint64_t{0});
    return;
  }
  // Sparse mark on a large bitmap (big τ, short lists): re-walk exactly
  // the words the mark pass wrote instead of wiping the whole bitmap.
  for (VertexId v : seeds) {
    for (std::uint32_t id : List(v)) scratch->words_[id >> 6] = 0;
  }
}

std::uint64_t QueryView::CoveredCount(std::span<const VertexId> seeds,
                                      QueryScratch* scratch) const {
  if (seeds.empty()) return 0;
  if (seeds.size() == 1) {
    // The commonest point query needs no bitmap at all: one vertex's
    // covered count IS its inverted-prefix length.
    SOLDIST_DCHECK(seeds[0] < num_vertices());
    return static_cast<std::uint64_t>(List(seeds[0]).size());
  }
  const std::uint64_t covered = MarkAndCount(seeds, scratch);
  ClearMarks(seeds, scratch);
  return covered;
}

double QueryView::Spread(std::span<const VertexId> seeds,
                         QueryScratch* scratch) const {
  return static_cast<double>(num_vertices()) *
         static_cast<double>(CoveredCount(seeds, scratch)) /
         static_cast<double>(count_);
}

double QueryView::Spread(std::span<const VertexId> seeds) const {
  return Spread(seeds, LocalScratch());
}

double QueryView::MarginalGain(std::span<const VertexId> seeds, VertexId v,
                               QueryScratch* scratch) const {
  std::uint64_t gain;
  if (seeds.empty()) {
    SOLDIST_DCHECK(v < num_vertices());
    gain = static_cast<std::uint64_t>(List(v).size());
  } else {
    SOLDIST_DCHECK(v < num_vertices());
    MarkAndCount(seeds, scratch);
    // Count v's not-yet-covered sets read-only — nothing new is marked,
    // so the clear pass only has to undo `seeds`.
    gain = 0;
    for (std::uint32_t id : List(v)) {
      gain += static_cast<std::uint64_t>(
          (scratch->words_[id >> 6] >> (id & 63) & 1) == 0);
    }
    ClearMarks(seeds, scratch);
  }
  return static_cast<double>(num_vertices()) * static_cast<double>(gain) /
         static_cast<double>(count_);
}

double QueryView::MarginalGain(std::span<const VertexId> seeds,
                               VertexId v) const {
  return MarginalGain(seeds, v, LocalScratch());
}

TopKResult QueryView::TopK(int k) const {
  SOLDIST_CHECK(k >= 1);
  // Selection runs the production bucket-CELF engine over a prefix view
  // (its ctor seeds the queue from the cut lengths / CoverCounts).
  MaxCoverageResult mc = GreedyMaxCoverage(arena_->Prefix(count_), k);
  TopKResult result;
  result.covered = mc.covered;
  result.spread = static_cast<double>(num_vertices()) *
                  static_cast<double>(mc.covered) /
                  static_cast<double>(count_);
  result.seeds = std::move(mc.seeds);
  // Replay the selection on the scratch bitmap to recover the per-seed
  // marginal estimates greedy observed (RunGreedy's estimates column):
  // estimate_i = n · (sets newly covered by seed i) / τ.
  QueryScratch* scratch = LocalScratch();
  result.estimates.reserve(result.seeds.size());
  std::uint64_t replayed = 0;
  for (VertexId seed : result.seeds) {
    const std::uint64_t gain = MarkAndCount({&seed, 1}, scratch);
    replayed += gain;
    result.estimates.push_back(static_cast<double>(num_vertices()) *
                               static_cast<double>(gain) /
                               static_cast<double>(count_));
  }
  ClearMarks(result.seeds, scratch);
  SOLDIST_DCHECK(replayed == result.covered);
  return result;
}

QueryService::QueryService(api::Session* session)
    : session_(session), cache_(session->options().arena_budget_bytes) {
  SOLDIST_CHECK(session_ != nullptr);
}

StatusOr<QueryView> QueryService::View(const api::WorkloadSpec& workload,
                                       const QuerySpec& spec) {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;
  StatusOr<ModelInstance> instance = session_->ResolveWorkload(workload);
  if (!instance.ok()) return instance.status();
  SamplingOptions sampling =
      session_->SamplingFor(spec.sample_threads, spec.chunk_size);
  // The key is everything that shapes arena CONTENT except its capacity:
  // workload label (network/prob/model), seed, and the stream family
  // (legacy sequential vs chunked engine at a chunk size — see
  // sim/rr_arena.h). Capacity is a lower bound, not an identity, so one
  // arena at the largest τ seen serves every smaller τ as a prefix.
  std::string key = workload.Label() + "#seed=" + std::to_string(spec.seed);
  key += sampling.UseEngine()
             ? "#engine/" + std::to_string(sampling.chunk_size)
             : "#seq";
  const ModelInstance resolved = instance.value();
  std::shared_ptr<const RrArena> arena = cache_.GetOrBuild(
      key, spec.sample_number, [&](std::uint64_t capacity) {
        if (sampling.pool == nullptr) {
          return RrArena::SampleFor(resolved, spec.seed, capacity, sampling);
        }
        // Pool-routed build: respect the pools' single-waiter contract.
        std::lock_guard<std::mutex> lock(build_mu_);
        return RrArena::SampleFor(resolved, spec.seed, capacity, sampling);
      });
  return QueryView(std::move(arena), spec.sample_number);
}

}  // namespace serve
}  // namespace soldist
