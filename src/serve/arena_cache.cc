#include "serve/arena_cache.h"

#include <utility>

#include "util/logging.h"

namespace soldist {
namespace serve {

ArenaCache::ArenaPtr ArenaCache::GetOrBuild(const std::string& key,
                                            std::uint64_t min_capacity,
                                            const Builder& build) {
  SOLDIST_CHECK(min_capacity >= 1);
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.slot->capacity >= min_capacity) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      slot = it->second.slot;
    } else {
      ++builds_;
      if (it != entries_.end()) {
        // Capacity upgrade: retire the smaller arena. Views already
        // handed out keep it alive through their shared_ptr; the cache
        // only forgets it.
        if (it->second.accounted && it->second.slot->arena) {
          resident_bytes_ -= it->second.charged_bytes;
        }
        lru_.erase(it->second.lru_pos);
        entries_.erase(it);
      }
      slot = std::make_shared<Slot>();
      slot->capacity = min_capacity;
      lru_.push_front(key);
      entries_[key] = Entry{slot, lru_.begin(), /*accounted=*/false};
    }
  }
  // Build outside mu_: same-key requests rendezvous on the slot's
  // once_flag, different keys sample concurrently. A deadline-cancelled
  // build returns SHORT (capacity() < requested) — still a valid arena
  // (prefix-closed streams), admitted below at its actual size.
  std::call_once(slot->once, [&] {
    slot->arena = build(slot->capacity);
    SOLDIST_CHECK(slot->arena != nullptr);
    SOLDIST_CHECK(slot->arena->capacity() >= 1);
    // Charge the as-built residency: the checksum walk below perturbs
    // spilling backends (chunk faults, hot-list warmup), and the budget
    // must reflect what the build itself left resident.
    slot->admitted_resident_bytes = slot->arena->ResidentBytes();
    // Reference checksum for the scrubber, taken while the arena is
    // provably pristine (and outside mu_ — it walks the content).
    slot->checksum = slot->arena->ContentChecksum();
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    // Account bytes exactly once, and only if the slot is still the one
    // the cache maps — a concurrent upgrade may already have replaced it.
    if (it != entries_.end() && it->second.slot == slot &&
        !it->second.accounted) {
      it->second.accounted = true;
      if (slot->arena->capacity() < slot->capacity) {
        // Cancelled build: downgrade the slot to what actually exists so
        // a later full-τ request upgrades instead of false-hitting.
        slot->capacity = slot->arena->capacity();
        it->second.partial = true;
      }
      // Charge what the backend actually holds in RAM (== MemoryBytes
      // for flat arenas); remember the charge so the refund on eviction
      // is exact even if residency drifts afterwards.
      it->second.charged_bytes = slot->admitted_resident_bytes;
      resident_bytes_ += it->second.charged_bytes;
      EvictOverBudgetLocked(key);
    }
  }
  return slot->arena;
}

ArenaCache::ArenaPtr ArenaCache::TryGet(const std::string& key,
                                        std::uint64_t min_capacity) {
  SOLDIST_CHECK(min_capacity >= 1);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.accounted ||
      it->second.slot->capacity < min_capacity) {
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.slot->arena;
}

ArenaCache::ArenaPtr ArenaCache::LookupResident(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.accounted) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.slot->arena;
}

std::vector<ArenaCache::ResidentEntry> ArenaCache::ResidentEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ResidentEntry> resident;
  for (const auto& [key, entry] : entries_) {
    if (!entry.accounted) continue;
    resident.push_back({key, entry.slot->arena, entry.slot->checksum});
  }
  return resident;
}

bool ArenaCache::Invalidate(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.accounted) return false;
  resident_bytes_ -= it->second.charged_bytes;
  ++invalidations_;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  return true;
}

void ArenaCache::EvictOverBudgetLocked(const std::string& keep) {
  if (budget_bytes_ == 0) return;
  while (resident_bytes_ > budget_bytes_) {
    // Walk from the LRU tail to the first evictable entry: accounted
    // (an in-build entry has unknown bytes) and not the one just served.
    // Two passes: full arenas first — they rebuild byte-identically from
    // their key and eviction actually frees their RAM — then partial
    // prefixes, which live degraded views typically still pin (evicting
    // one refunds the ledger without freeing memory, and strands the
    // next degraded request with no prefix to answer from).
    auto victim = lru_.rend();
    for (int pass = 0; pass < 2 && victim == lru_.rend(); ++pass) {
      const bool allow_partial = pass == 1;
      for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
        if (*rit == keep) continue;
        auto it = entries_.find(*rit);
        SOLDIST_DCHECK(it != entries_.end());
        if (it->second.accounted &&
            (allow_partial || !it->second.partial)) {
          victim = rit;
          break;
        }
      }
    }
    if (victim == lru_.rend()) return;  // nothing evictable: degrade
    auto it = entries_.find(*victim);
    resident_bytes_ -= it->second.charged_bytes;
    ++evictions_;
    lru_.erase(std::next(victim).base());
    entries_.erase(it);
  }
}

ArenaCache::Stats ArenaCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.builds = builds_;
  stats.evictions = evictions_;
  stats.invalidations = invalidations_;
  stats.resident_bytes = resident_bytes_;
  stats.budget_bytes = budget_bytes_;
  std::uint64_t resident = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t partial = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry.accounted) continue;
    ++resident;
    total_bytes += entry.slot->arena->MemoryBytes();
    partial += entry.partial ? 1 : 0;
  }
  stats.resident_arenas = resident;
  stats.total_bytes = total_bytes;
  stats.partial_arenas = partial;
  return stats;
}

}  // namespace serve
}  // namespace soldist
