// Request-level resilience primitives for the serving layer: deadlines,
// bounded retry with deterministic backoff, and admission control.
//
// The serving contract these implement (see README "Resilience"):
//
//  * A request carries a Deadline. A build that cannot finish in time is
//    CANCELLED cooperatively (sim/ CancelToken) and the service answers
//    from the largest already-resident τ prefix instead of blocking —
//    a DEGRADED answer, tagged degraded=true with the served τ. Thanks
//    to prefix-closed sampling streams, a truncated arena is
//    byte-identical to a direct smaller build, so a degraded answer is
//    an exact answer to a smaller-τ question, never an approximation of
//    unknown quality.
//  * Transient IO failures (StatusCode::kIoError — the code every
//    injected and real disk fault surfaces as) are retried under a
//    RetryPolicy with exponential backoff and deterministic jitter,
//    never sleeping past the request deadline. Other codes (corruption,
//    identity mismatch, invalid argument) are permanent and fail fast.
//  * An AdmissionController bounds concurrent arena builds. Beyond
//    max_inflight, up to max_queue requests wait (bounded by their
//    deadline) for a slot; the rest are SHED with kUnavailable so an
//    overload cannot pile unbounded builder threads onto the sampler.
//
// Clocks and sleeps are injectable so every policy is testable without
// wall-clock waits.

#ifndef SOLDIST_SERVE_RESILIENCE_H_
#define SOLDIST_SERVE_RESILIENCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>

#include "util/status.h"

namespace soldist {
namespace serve {

/// Monotonic clock reading in microseconds (std::chrono::steady_clock).
std::uint64_t SteadyNowMicros();

/// Injectable clock: returns "now" in microseconds on any monotonic
/// scale. Defaults to SteadyNowMicros everywhere one is accepted.
using ClockMicrosFn = std::function<std::uint64_t()>;

/// Injectable sleep, in microseconds.
using SleepMicrosFn = std::function<void(std::uint64_t)>;

/// \brief A request deadline on a monotonic clock. Default-constructed
/// = unlimited (never expires); copies share the clock and expiry, so a
/// Deadline can be handed down through builders and cancel predicates.
class Deadline {
 public:
  /// Unlimited: expired() is always false.
  Deadline() = default;

  /// Expires `millis` from now on `clock` (SteadyNowMicros when empty).
  static Deadline AfterMillis(std::uint64_t millis, ClockMicrosFn clock = {});

  bool unlimited() const { return !armed_; }

  bool expired() const;

  /// Microseconds left; 0 when expired, max() when unlimited.
  std::uint64_t remaining_micros() const;

 private:
  ClockMicrosFn clock_;                 // empty only when !armed_
  std::uint64_t deadline_us_ = 0;
  bool armed_ = false;
};

/// \brief Bounded exponential backoff. Attempt k (0-based) sleeps
/// min(initial * multiplier^k, max) scaled by a deterministic jitter in
/// [0.5, 1.0) drawn from (jitter_seed, attempt) — reruns replay the
/// exact schedule, and concurrent retriers with distinct seeds desync.
struct RetryPolicy {
  int max_attempts = 3;                    ///< total tries, >= 1
  std::uint64_t initial_backoff_us = 1000;
  double multiplier = 2.0;
  std::uint64_t max_backoff_us = 100000;
  std::uint64_t jitter_seed = 1;
  /// Attempt budget shared across EVERY retryable IO op of one request
  /// (a build's arena load and save draw from the same RetryBudget pool,
  /// so a load that burns its full max_attempts leaves the save exactly
  /// budget − max_attempts tries instead of a fresh allowance — a
  /// request's worst-case IO stall is bounded once, not per op). The
  /// default, max_attempts + 1, guarantees the second op of a pair at
  /// least one try. 0 = no shared budget (per-op max_attempts only).
  int request_budget = 4;

  /// The post-jitter sleep before retry number `attempt` (0-based).
  std::uint64_t BackoffMicros(int attempt) const;
};

/// \brief The shared attempt pool behind RetryPolicy::request_budget:
/// one instance per REQUEST, passed to every RetryWithBackoff the
/// request performs. Each attempt (including firsts) consumes one unit;
/// an op that finds the pool empty fails with kUnavailable immediately
/// instead of piling more IO onto a request that already spent its
/// allowance. Thread-safe (ops of one request may run on pool workers).
class RetryBudget {
 public:
  explicit RetryBudget(int attempts) : remaining_(attempts) {}

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// Consumes one attempt; false when the pool is spent.
  bool TryConsume() {
    int current = remaining_.load(std::memory_order_relaxed);
    while (current > 0) {
      if (remaining_.compare_exchange_weak(current, current - 1,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  int remaining() const {
    return remaining_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> remaining_;
};

/// Runs `op` up to policy.max_attempts times. ONLY kIoError is retried
/// (transient by contract — see the header comment); any other failure
/// and the first success return immediately. Sleeps are clipped to the
/// deadline's remaining time, and an expired deadline stops the loop
/// with the last error rather than burning attempts that cannot be
/// served. Each retry (not each attempt) bumps *retries when non-null.
/// `sleep` defaults to std::this_thread::sleep_for. When `budget` is
/// non-null every attempt additionally draws from the request-shared
/// pool; an empty pool stops the loop (kUnavailable when not even the
/// first attempt ran).
Status RetryWithBackoff(const RetryPolicy& policy, const Deadline& deadline,
                        const std::function<Status()>& op,
                        std::atomic<std::uint64_t>* retries = nullptr,
                        const SleepMicrosFn& sleep = {},
                        RetryBudget* budget = nullptr);

/// Monotone counters the service exposes through REPL `stats`.
struct ResilienceStats {
  std::uint64_t degraded_answers = 0;  ///< views served below requested τ
  std::uint64_t shed_requests = 0;     ///< admissions refused (kUnavailable)
  std::uint64_t retries = 0;           ///< IO retries that actually re-ran
  std::uint64_t deadline_misses = 0;   ///< deadlines that expired in-flight
};

/// \brief Bounds concurrent arena builds. max_inflight == 0 disables
/// admission entirely (every Admit succeeds immediately). Otherwise up
/// to max_inflight tickets are out at once; up to max_queue further
/// callers wait on a condition variable bounded by their deadline, and
/// callers beyond the queue watermark are shed immediately with
/// kUnavailable — overload sheds instead of stacking builder threads.
class AdmissionController {
 public:
  AdmissionController(std::int64_t max_inflight, std::int64_t max_queue);

  /// RAII build slot: releasing (destruction) wakes one queued waiter.
  /// A default-constructed or moved-from Ticket releases nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    void Release();
    AdmissionController* controller_ = nullptr;
  };

  /// Admits one build, queueing up to the deadline when all slots are
  /// busy. Errors: kUnavailable when the queue is at its watermark
  /// (shed), kDeadlineExceeded when the wait outlives the deadline.
  StatusOr<Ticket> Admit(const Deadline& deadline);

  std::int64_t inflight() const;
  std::int64_t queued() const;

 private:
  void Release();

  const std::int64_t max_inflight_;
  const std::int64_t max_queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t inflight_ = 0;  // guarded by mu_
  std::int64_t queued_ = 0;    // guarded by mu_
};

}  // namespace serve
}  // namespace soldist

#endif  // SOLDIST_SERVE_RESILIENCE_H_
