#include "serve/resilience.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "random/splitmix64.h"
#include "util/logging.h"

namespace soldist {
namespace serve {

std::uint64_t SteadyNowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Deadline Deadline::AfterMillis(std::uint64_t millis, ClockMicrosFn clock) {
  Deadline d;
  d.clock_ = clock ? std::move(clock) : ClockMicrosFn(&SteadyNowMicros);
  d.deadline_us_ = d.clock_() + millis * 1000;
  d.armed_ = true;
  return d;
}

bool Deadline::expired() const {
  return armed_ && clock_() >= deadline_us_;
}

std::uint64_t Deadline::remaining_micros() const {
  if (!armed_) return std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t now = clock_();
  return now >= deadline_us_ ? 0 : deadline_us_ - now;
}

std::uint64_t RetryPolicy::BackoffMicros(int attempt) const {
  double backoff = static_cast<double>(initial_backoff_us);
  for (int i = 0; i < attempt; ++i) backoff *= multiplier;
  backoff = std::min(backoff, static_cast<double>(max_backoff_us));
  // Jitter in [0.5, 1.0): one seeded draw per (seed, attempt), so the
  // schedule is a pure function of the policy.
  SplitMix64 rng(DeriveSeed(jitter_seed, static_cast<std::uint64_t>(attempt)));
  const double jitter =
      0.5 + 0.5 * static_cast<double>(rng.Next() >> 11) *
                (1.0 / 9007199254740992.0);  // 2^-53
  return static_cast<std::uint64_t>(backoff * jitter);
}

Status RetryWithBackoff(const RetryPolicy& policy, const Deadline& deadline,
                        const std::function<Status()>& op,
                        std::atomic<std::uint64_t>* retries,
                        const SleepMicrosFn& sleep,
                        RetryBudget* budget) {
  SOLDIST_CHECK(policy.max_attempts >= 1);
  Status last = Status::OK();
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    // The request-shared pool gates every attempt, the first included:
    // a request whose earlier IO burned the allowance must not start
    // more (its worst-case stall is bounded once, across ops).
    if (budget != nullptr && !budget->TryConsume()) {
      if (attempt == 0) {
        return Status::Unavailable(
            "retry budget exhausted before the first attempt");
      }
      break;
    }
    if (attempt > 0) {
      // Clip the backoff to the deadline: sleeping past it would turn a
      // servable degraded answer into a guaranteed miss.
      const std::uint64_t remaining = deadline.remaining_micros();
      if (remaining == 0) break;
      const std::uint64_t backoff =
          std::min(policy.BackoffMicros(attempt - 1), remaining);
      if (backoff > 0) {
        if (sleep) {
          sleep(backoff);
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff));
        }
      }
      if (deadline.expired()) break;
      if (retries != nullptr) {
        retries->fetch_add(1, std::memory_order_relaxed);
      }
    }
    last = op();
    if (last.ok()) return last;
    // Only kIoError is transient; everything else (corruption, identity
    // mismatch, bad arguments) will fail identically on retry.
    if (last.code() != StatusCode::kIoError) return last;
  }
  return last;
}

AdmissionController::AdmissionController(std::int64_t max_inflight,
                                         std::int64_t max_queue)
    : max_inflight_(max_inflight), max_queue_(max_queue) {
  SOLDIST_CHECK(max_inflight_ >= 0);
  SOLDIST_CHECK(max_queue_ >= 0);
}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    const Deadline& deadline) {
  if (max_inflight_ == 0) return Ticket(this);
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < max_inflight_) {
    ++inflight_;
    return Ticket(this);
  }
  if (queued_ >= max_queue_) {
    return Status::Unavailable(
        "admission: " + std::to_string(inflight_) + " builds in flight and " +
        std::to_string(queued_) + " queued (max-inflight-builds=" +
        std::to_string(max_inflight_) + ", max-queued-builds=" +
        std::to_string(max_queue_) + ") — shedding");
  }
  ++queued_;
  // Wait in bounded slices so an injected clock's expiry is still
  // honored even though the cv waits on the real clock.
  bool admitted = false;
  while (!admitted) {
    if (inflight_ < max_inflight_) {
      admitted = true;
      break;
    }
    const std::uint64_t remaining = deadline.remaining_micros();
    if (remaining == 0) break;
    const std::uint64_t slice =
        std::min<std::uint64_t>(remaining, 50 * 1000);
    cv_.wait_for(lock, std::chrono::microseconds(slice));
  }
  --queued_;
  if (!admitted) {
    return Status::DeadlineExceeded(
        "admission: deadline expired while queued for a build slot");
  }
  ++inflight_;
  return Ticket(this);
}

std::int64_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::int64_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_inflight_ == 0) return;
    --inflight_;
  }
  cv_.notify_one();
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->Release();
    controller_ = nullptr;
  }
}

}  // namespace serve
}  // namespace soldist
