// InfluenceGraph: a directed graph plus an influence-probability function
// p : E -> (0, 1] (paper Section 2.1). Probabilities are stored aligned to
// both CSR directions so forward simulation and reverse (RR-set) sampling
// each stream through contiguous memory.

#ifndef SOLDIST_MODEL_INFLUENCE_GRAPH_H_
#define SOLDIST_MODEL_INFLUENCE_GRAPH_H_

#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace soldist {

/// \brief Immutable influence graph G = (V, E, p).
class InfluenceGraph {
 public:
  /// \param graph the structure; \param out_probabilities p(e) for each
  /// out-CSR edge id, all in (0, 1].
  InfluenceGraph(Graph graph, std::vector<double> out_probabilities);

  const Graph& graph() const { return graph_; }
  VertexId num_vertices() const { return graph_.num_vertices(); }
  EdgeId num_edges() const { return graph_.num_edges(); }

  /// Probability of the arc with out-CSR edge id `e`.
  double OutProbability(EdgeId e) const {
    SOLDIST_DCHECK(e < out_prob_.size());
    return out_prob_[e];
  }

  /// Probability of the arc at in-CSR position `pos` (same arc as
  /// graph().in_sources()[pos]).
  double InProbability(EdgeId pos) const {
    SOLDIST_DCHECK(pos < in_prob_.size());
    return in_prob_[pos];
  }

  const std::vector<double>& out_probabilities() const { return out_prob_; }
  const std::vector<double>& in_probabilities() const { return in_prob_; }

  /// m̃ = Σ_e p(e): the expected number of live edges in G ~ G; Snapshot's
  /// expected per-snapshot sample size (paper Table 1).
  double SumProbabilities() const { return sum_prob_; }

 private:
  Graph graph_;
  std::vector<double> out_prob_;
  std::vector<double> in_prob_;
  double sum_prob_;
};

}  // namespace soldist

#endif  // SOLDIST_MODEL_INFLUENCE_GRAPH_H_
