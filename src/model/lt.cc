#include "model/lt.h"

#include <algorithm>

namespace soldist {

bool IsValidLtGraph(const InfluenceGraph& ig, double tolerance) {
  const Graph& g = ig.graph();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    double sum = 0.0;
    for (EdgeId pos = g.in_offsets()[v]; pos < g.in_offsets()[v + 1]; ++pos) {
      sum += ig.InProbability(pos);
    }
    if (sum > 1.0 + tolerance) return false;
  }
  return true;
}

LtWeights::LtWeights(const InfluenceGraph* ig) : ig_(ig) {
  SOLDIST_CHECK(IsValidLtGraph(*ig))
      << "LT needs per-vertex in-weights summing to <= 1 (use iwc)";
  const Graph& g = ig->graph();
  prefix_.resize(g.num_edges());
  total_.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    double acc = 0.0;
    for (EdgeId pos = g.in_offsets()[v]; pos < g.in_offsets()[v + 1]; ++pos) {
      acc += ig->InProbability(pos);
      prefix_[pos] = acc;
    }
    total_[v] = acc;
  }
}

EdgeId LtWeights::SampleLiveInEdge(VertexId v, Rng* rng) const {
  const Graph& g = ig_->graph();
  const EdgeId begin = g.in_offsets()[v];
  const EdgeId end = g.in_offsets()[v + 1];
  if (begin == end) return kNoInEdge;
  double x = rng->UnitReal();
  if (x >= total_[v]) return kNoInEdge;  // keeps no in-edge
  // Binary search the cumulative table within v's in-range.
  const double* lo = prefix_.data() + begin;
  const double* hi = prefix_.data() + end;
  const double* it = std::upper_bound(lo, hi, x);
  SOLDIST_DCHECK(it != hi);
  return begin + static_cast<EdgeId>(it - lo);
}

}  // namespace soldist
