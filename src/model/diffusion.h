// DiffusionModel: the diffusion-model dimension of an experiment. The
// paper's solution-distribution study runs under both the independent
// cascade (IC) and linear threshold (LT) models; every layer above model/
// selects between them through a ModelInstance so no experiment can
// silently drop a model family.

#ifndef SOLDIST_MODEL_DIFFUSION_H_
#define SOLDIST_MODEL_DIFFUSION_H_

#include <string>

#include "model/influence_graph.h"
#include "model/lt.h"
#include "util/status.h"

namespace soldist {

/// The two diffusion models (paper Section 2.2 and Section 1's LT
/// citation), in flag order.
enum class DiffusionModel {
  kIc,  ///< independent cascade            ("ic")
  kLt,  ///< linear threshold               ("lt")
};

/// Canonical short name: "ic" / "lt" (also the --model flag values).
std::string DiffusionModelName(DiffusionModel model);

/// Inverse of DiffusionModelName; accepts "ic"/"IC" and "lt"/"LT".
StatusOr<DiffusionModel> ParseDiffusionModel(const std::string& name);

/// \brief One diffusion workload: an influence graph plus the model to
/// run on it, with the LT weight table resolved when model == kLt.
///
/// This is the unit the unified estimator factory, the trial runner, and
/// the sweeps operate on; the InstanceRegistry builds and caches the
/// LtWeights alongside the InfluenceGraph.
struct ModelInstance {
  const InfluenceGraph* ig = nullptr;
  DiffusionModel model = DiffusionModel::kIc;
  /// Non-null iff model == kLt (the per-vertex cumulative in-weight
  /// table; requires in-weights summing to <= 1, e.g. the iwc setting).
  const LtWeights* lt_weights = nullptr;

  static ModelInstance Ic(const InfluenceGraph* ig) {
    return {ig, DiffusionModel::kIc, nullptr};
  }
  static ModelInstance Lt(const LtWeights* weights) {
    return {&weights->influence_graph(), DiffusionModel::kLt, weights};
  }
};

}  // namespace soldist

#endif  // SOLDIST_MODEL_DIFFUSION_H_
