#include "model/influence_graph.h"

#include <numeric>

namespace soldist {

InfluenceGraph::InfluenceGraph(Graph graph,
                               std::vector<double> out_probabilities)
    : graph_(std::move(graph)), out_prob_(std::move(out_probabilities)) {
  SOLDIST_CHECK_EQ(out_prob_.size(), graph_.num_edges())
      << "probability array must align with the out-CSR edges";
  for (double p : out_prob_) {
    SOLDIST_CHECK(p > 0.0 && p <= 1.0) << "edge probability out of (0,1]";
  }
  // Mirror probabilities into in-CSR order via the arc cross-index.
  const auto& in_to_out = graph_.in_to_out_edge();
  in_prob_.resize(out_prob_.size());
  for (std::size_t pos = 0; pos < in_to_out.size(); ++pos) {
    in_prob_[pos] = out_prob_[in_to_out[pos]];
  }
  sum_prob_ = std::accumulate(out_prob_.begin(), out_prob_.end(), 0.0);
}

}  // namespace soldist
