// InstanceSpec: a problem instance in the paper's sense — a network, an
// edge-probability setting, and a seed-set size k, e.g. "Karate (uc0.1,
// k=4)".

#ifndef SOLDIST_MODEL_INSTANCE_H_
#define SOLDIST_MODEL_INSTANCE_H_

#include <string>

#include "model/probability.h"

namespace soldist {

/// \brief Identifies one experimental instance.
struct InstanceSpec {
  std::string network;
  ProbabilityModel prob = ProbabilityModel::kUc01;
  int k = 1;

  /// Paper-style label: "Karate (uc0.1, k=4)".
  std::string Label() const;

  friend bool operator==(const InstanceSpec&, const InstanceSpec&) = default;
};

}  // namespace soldist

#endif  // SOLDIST_MODEL_INSTANCE_H_
