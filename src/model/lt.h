// Linear threshold (LT) model support (Granovetter 1978; Kempe et al.
// 2003). The paper's experiments use the IC model; LT is the other
// well-established diffusion model its Section 1 cites, and the library
// supports it end-to-end as an extension: every approach (Oneshot /
// Snapshot / RIS) has an LT counterpart built on the same greedy
// framework.
//
// LT semantics: vertex v has in-edge weights b(u,v) with Σ_u b(u,v) <= 1
// and a uniform random threshold θ_v; v activates when the weight of its
// active in-neighbors reaches θ_v. Equivalent live-edge form: every
// vertex independently keeps at most ONE in-edge, (u,v) with probability
// b(u,v) and none with probability 1 − Σ b.

#ifndef SOLDIST_MODEL_LT_H_
#define SOLDIST_MODEL_LT_H_

#include <vector>

#include "model/influence_graph.h"
#include "random/rng.h"

namespace soldist {

/// True when every vertex's in-weights sum to at most 1 (+ tolerance):
/// the LT validity condition. iwc satisfies it with equality; uc0.1 on a
/// high-in-degree graph does not.
bool IsValidLtGraph(const InfluenceGraph& ig, double tolerance = 1e-9);

/// \brief Per-vertex cumulative in-weight table for O(log d) live-in-edge
/// sampling under LT.
///
/// For vertex v the candidate in-edges live at in-CSR positions
/// [in_offsets[v], in_offsets[v+1]); prefix(pos) is the cumulative weight
/// within v's range, and Total(v) = Σ_u b(u,v).
class LtWeights {
 public:
  /// Builds the table; CHECKs IsValidLtGraph.
  explicit LtWeights(const InfluenceGraph* ig);

  const InfluenceGraph& influence_graph() const { return *ig_; }

  /// Total in-weight of v (the probability that v keeps an in-edge).
  double Total(VertexId v) const { return total_[v]; }

  /// Samples v's live in-edge: returns the in-CSR position, or
  /// kNoInEdge when v keeps none. One UnitReal per call.
  static constexpr EdgeId kNoInEdge = ~0ULL;
  EdgeId SampleLiveInEdge(VertexId v, Rng* rng) const;

 private:
  const InfluenceGraph* ig_;
  std::vector<double> prefix_;  // aligned with in-CSR positions
  std::vector<double> total_;  // per vertex
};

}  // namespace soldist

#endif  // SOLDIST_MODEL_LT_H_
