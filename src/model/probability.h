// Edge-probability settings (paper Section 4.3): public network data has no
// influence probabilities, so they are assigned by well-established
// strategies: uniform cascade, in-/out-degree weighted cascade, and (as a
// library extension) trivalency.

#ifndef SOLDIST_MODEL_PROBABILITY_H_
#define SOLDIST_MODEL_PROBABILITY_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "model/influence_graph.h"
#include "random/rng.h"
#include "util/status.h"

namespace soldist {

/// The paper's probability settings plus the trivalency extension.
enum class ProbabilityModel {
  kUc01,        ///< uniform cascade, p(e) = 0.1          ("uc0.1")
  kUc001,       ///< uniform cascade, p(e) = 0.01         ("uc0.01")
  kIwc,         ///< in-degree weighted, p(u,v) = 1/d−(v) ("iwc")
  kOwc,         ///< out-degree weighted, p(u,v) = 1/d+(u)("owc")
  kTrivalency,  ///< p(e) uniform from {0.1, 0.01, 0.001} ("tv")
};

/// The four settings the paper evaluates, in its column order.
std::vector<ProbabilityModel> PaperProbabilityModels();

/// Canonical short name, e.g. "uc0.1", "iwc".
std::string ProbabilityModelName(ProbabilityModel model);

/// Inverse of ProbabilityModelName.
StatusOr<ProbabilityModel> ParseProbabilityModel(const std::string& name);

/// Edge probabilities for `graph` in out-CSR order.
/// \param rng required only for kTrivalency; may be null otherwise.
std::vector<double> AssignProbabilities(const Graph& graph,
                                        ProbabilityModel model, Rng* rng);

/// Convenience: builds the influence graph for (graph, model).
InfluenceGraph MakeInfluenceGraph(Graph graph, ProbabilityModel model,
                                  Rng* rng = nullptr);

}  // namespace soldist

#endif  // SOLDIST_MODEL_PROBABILITY_H_
