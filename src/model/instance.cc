#include "model/instance.h"

namespace soldist {

std::string InstanceSpec::Label() const {
  return network + " (" + ProbabilityModelName(prob) + ", k=" +
         std::to_string(k) + ")";
}

}  // namespace soldist
