#include "model/probability.h"

namespace soldist {

std::vector<ProbabilityModel> PaperProbabilityModels() {
  return {ProbabilityModel::kUc01, ProbabilityModel::kUc001,
          ProbabilityModel::kIwc, ProbabilityModel::kOwc};
}

std::string ProbabilityModelName(ProbabilityModel model) {
  switch (model) {
    case ProbabilityModel::kUc01:
      return "uc0.1";
    case ProbabilityModel::kUc001:
      return "uc0.01";
    case ProbabilityModel::kIwc:
      return "iwc";
    case ProbabilityModel::kOwc:
      return "owc";
    case ProbabilityModel::kTrivalency:
      return "tv";
  }
  return "?";
}

StatusOr<ProbabilityModel> ParseProbabilityModel(const std::string& name) {
  if (name == "uc0.1") return ProbabilityModel::kUc01;
  if (name == "uc0.01") return ProbabilityModel::kUc001;
  if (name == "iwc") return ProbabilityModel::kIwc;
  if (name == "owc") return ProbabilityModel::kOwc;
  if (name == "tv") return ProbabilityModel::kTrivalency;
  return Status::NotFound("unknown probability model: " + name);
}

std::vector<double> AssignProbabilities(const Graph& graph,
                                        ProbabilityModel model, Rng* rng) {
  std::vector<double> prob(graph.num_edges());
  switch (model) {
    case ProbabilityModel::kUc01:
      std::fill(prob.begin(), prob.end(), 0.1);
      break;
    case ProbabilityModel::kUc001:
      std::fill(prob.begin(), prob.end(), 0.01);
      break;
    case ProbabilityModel::kIwc:
      // p(u,v) = 1/d−(v): Σ_{u∈Γ−(v)} p(u,v) = 1 for every v.
      for (VertexId u = 0; u < graph.num_vertices(); ++u) {
        for (EdgeId e = graph.out_offsets()[u]; e < graph.out_offsets()[u + 1];
             ++e) {
          VertexId v = graph.out_targets()[e];
          prob[e] = 1.0 / static_cast<double>(graph.InDegree(v));
        }
      }
      break;
    case ProbabilityModel::kOwc:
      // p(u,v) = 1/d+(u): each vertex spreads one unit of influence.
      for (VertexId u = 0; u < graph.num_vertices(); ++u) {
        double p = graph.OutDegree(u) > 0
                       ? 1.0 / static_cast<double>(graph.OutDegree(u))
                       : 1.0;
        for (EdgeId e = graph.out_offsets()[u]; e < graph.out_offsets()[u + 1];
             ++e) {
          prob[e] = p;
        }
      }
      break;
    case ProbabilityModel::kTrivalency: {
      SOLDIST_CHECK(rng != nullptr) << "trivalency needs randomness";
      constexpr double kLevels[3] = {0.1, 0.01, 0.001};
      for (auto& p : prob) p = kLevels[rng->UniformInt(3)];
      break;
    }
  }
  return prob;
}

InfluenceGraph MakeInfluenceGraph(Graph graph, ProbabilityModel model,
                                  Rng* rng) {
  std::vector<double> prob = AssignProbabilities(graph, model, rng);
  return InfluenceGraph(std::move(graph), std::move(prob));
}

}  // namespace soldist
