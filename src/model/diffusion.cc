#include "model/diffusion.h"

namespace soldist {

std::string DiffusionModelName(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kIc:
      return "ic";
    case DiffusionModel::kLt:
      return "lt";
  }
  SOLDIST_CHECK(false) << "unreachable";
  return "";
}

StatusOr<DiffusionModel> ParseDiffusionModel(const std::string& name) {
  if (name == "ic" || name == "IC") return DiffusionModel::kIc;
  if (name == "lt" || name == "LT") return DiffusionModel::kLt;
  return Status::InvalidArgument("unknown diffusion model: '" + name +
                                 "' (expected ic or lt)");
}

}  // namespace soldist
