// Bottom-k min-hash reachability sketches (Cohen 1997), the technique the
// paper's Section 3.4.3 cites for Snapshot's expensive first iteration:
// estimating r_G(v) for EVERY vertex is the descendant counting problem
// (no truly-subquadratic exact algorithm under SETH), but bottom-k
// sketches approximate all n counts in near-linear time.

#ifndef SOLDIST_GRAPH_REACH_SKETCH_H_
#define SOLDIST_GRAPH_REACH_SKETCH_H_

#include <vector>

#include "graph/graph.h"
#include "random/rng.h"

namespace soldist {

/// \brief Bottom-k sketches of every vertex's reachability set.
///
/// Construction: draw a uniform rank per vertex, condense SCCs (Tarjan
/// emits them in reverse topological order), and merge each component's
/// member ranks with its successors' sketches, keeping the k smallest.
/// Estimate: |R(v)| ≈ (k−1)/x_k where x_k is the k-th smallest rank in
/// v's sketch; exact when the sketch holds fewer than k ranks.
class ReachabilitySketches {
 public:
  /// \param k sketch size; larger k = lower variance (SD ≈ |R|/√(k−2))
  ReachabilitySketches(const Graph* graph, int k, Rng* rng);

  /// Estimated number of vertices reachable from v (including v).
  double EstimateReachable(VertexId v) const;

  int k() const { return k_; }

 private:
  int k_;
  /// Per component: sorted ascending bottom-k ranks.
  std::vector<std::vector<double>> component_sketch_;
  std::vector<std::uint32_t> component_of_;
};

}  // namespace soldist

#endif  // SOLDIST_GRAPH_REACH_SKETCH_H_
