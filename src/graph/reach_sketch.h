// Bottom-k min-hash reachability sketches (Cohen 1997), the technique the
// paper's Section 3.4.3 cites for Snapshot's expensive first iteration:
// estimating r_G(v) for EVERY vertex is the descendant counting problem
// (no truly-subquadratic exact algorithm under SETH), but bottom-k
// sketches approximate all n counts in near-linear time.
//
// The core is a single bottom-up pass over an SCC condensation DAG in
// Tarjan's reverse-topological numbering (graph/components.h). It is
// shared by two consumers: ReachabilitySketches (whole-graph sketches)
// and the condensed Snapshot backend (core/snapshot.h), which sketches
// every sampled live-edge DAG to seed CELF's lazy queue — a sketch that
// saturates below k ranks is an EXACT reachable count, so most initial
// bounds are tight for free.

#ifndef SOLDIST_GRAPH_REACH_SKETCH_H_
#define SOLDIST_GRAPH_REACH_SKETCH_H_

#include <span>
#include <vector>

#include "graph/components.h"
#include "graph/graph.h"
#include "random/rng.h"

namespace soldist {

/// \brief Flat per-component bottom-k sketches over a condensation DAG.
///
/// Storage: component c's sketch is values[c*k .. c*k + len[c]), sorted
/// ascending. len[c] < k means the sketch holds EVERY distinct rank
/// reachable from c — i.e. len[c] IS the exact reachable-vertex count.
struct DagSketches {
  int k = 0;
  std::vector<double> values;      ///< num_components × k slots
  std::vector<std::uint8_t> len;   ///< ranks used per component

  std::span<const double> Sketch(std::uint32_t c) const {
    return {values.data() + static_cast<std::size_t>(c) * k, len[c]};
  }
  /// True when Sketch(c) is the full reachable rank set (exact count).
  bool IsExact(std::uint32_t c) const { return len[c] < k; }
  /// |R(c)| estimate: len[c] when exact, else (k−1)/x_k.
  double Estimate(std::uint32_t c) const;
};

/// Builds bottom-k sketches for every component of `dag` in one
/// bottom-up pass: draw a uniform rank per vertex, merge each
/// component's member ranks with its successors' sketches (keeping the k
/// smallest distinct ranks). Requires Tarjan's reverse-topological
/// numbering (successors of c have ids < c) and 2 <= k <= 255.
DagSketches BottomKDagSketches(std::span<const std::uint32_t> component_of,
                               VertexId num_vertices,
                               const CondensationDag& dag, int k, Rng* rng);

/// Same, with caller-supplied per-vertex ranks. With DISTINCT ranks
/// (e.g. a random permutation scaled into (0, 1]) the dedup during the
/// merges removes exactly the duplicate *vertices*, so IsExact is a hard
/// guarantee rather than an almost-surely one — the property the
/// condensed Snapshot backend's sound CELF bounds rely on.
DagSketches BottomKDagSketches(std::span<const std::uint32_t> component_of,
                               VertexId num_vertices,
                               const CondensationDag& dag, int k,
                               std::span<const double> vertex_ranks);

/// \brief Scratch-reusing sketcher for τ-scale loops (one sketch per
/// sampled snapshot DAG): bucketing and merge buffers live across calls,
/// and the result is written into a reused DagSketches. Output equals
/// BottomKDagSketches exactly.
class DagSketcher {
 public:
  DagSketcher(VertexId num_vertices, int k);

  void Sketch(std::span<const std::uint32_t> component_of,
              VertexId num_vertices, const CondensationDag& dag,
              std::span<const double> vertex_ranks, DagSketches* out);

  /// Same, with the vertices pre-sorted by ascending rank (`by_rank[i]`
  /// is the vertex with the i-th smallest rank): buckets then come out
  /// sorted by construction and the per-component sorts vanish. The
  /// condensed Snapshot backend reuses ONE rank permutation across τ
  /// sketches, so it pays for the order once.
  void Sketch(std::span<const std::uint32_t> component_of,
              VertexId num_vertices, const CondensationDag& dag,
              std::span<const double> vertex_ranks,
              std::span<const VertexId> by_rank, DagSketches* out);

  int k() const { return k_; }

 private:
  int k_;
  std::vector<std::uint32_t> bucket_offsets_;
  std::vector<std::uint32_t> cursor_;
  std::vector<double> member_ranks_;
  std::vector<double> scratch_;
};

/// \brief Bottom-k sketches of every vertex's reachability set.
///
/// Construction: condense SCCs with Tarjan and run BottomKDagSketches
/// over the condensation. Estimate: |R(v)| ≈ (k−1)/x_k where x_k is the
/// k-th smallest rank in v's sketch; exact when the sketch holds fewer
/// than k ranks.
class ReachabilitySketches {
 public:
  /// \param k sketch size; larger k = lower variance (SD ≈ |R|/√(k−2))
  ReachabilitySketches(const Graph* graph, int k, Rng* rng);

  /// Estimated number of vertices reachable from v (including v).
  double EstimateReachable(VertexId v) const;

  int k() const { return k_; }

 private:
  int k_;
  DagSketches sketches_;
  std::vector<std::uint32_t> component_of_;
};

}  // namespace soldist

#endif  // SOLDIST_GRAPH_REACH_SKETCH_H_
