// Edge-list file I/O in the SNAP text format, so users with the paper's
// original datasets (ca-GrQc, Wiki-Vote, com-Youtube, soc-Pokec) can load
// them directly instead of the bundled synthetic proxies.

#ifndef SOLDIST_GRAPH_IO_H_
#define SOLDIST_GRAPH_IO_H_

#include <string>

#include "graph/edge_list.h"
#include "util/status.h"

namespace soldist {

/// \brief Text edge-list reader/writer.
///
/// Format: one "src dst" pair per line (any whitespace); lines starting
/// with '#' or '%' are comments (SNAP and KONECT conventions). Vertex ids
/// are remapped to a dense [0, n) range in first-appearance order.
class GraphIo {
 public:
  /// Loads `path`; returns the densely-remapped edge list.
  static StatusOr<EdgeList> LoadEdgeList(const std::string& path);

  /// Parses edge-list text (same format as LoadEdgeList).
  static StatusOr<EdgeList> ParseEdgeList(const std::string& text);

  /// Writes "src dst" lines.
  static Status SaveEdgeList(const EdgeList& edges, const std::string& path);
};

}  // namespace soldist

#endif  // SOLDIST_GRAPH_IO_H_
