// Graph: immutable directed graph in compressed-sparse-row form, with both
// out- and in-adjacency so forward simulation (Oneshot/Snapshot) and
// reverse sampling (RIS) are each a contiguous scan.

#ifndef SOLDIST_GRAPH_GRAPH_H_
#define SOLDIST_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "util/logging.h"

namespace soldist {

/// \brief Immutable CSR directed graph.
///
/// Build with GraphBuilder (graph/builder.h). Arc order within a vertex's
/// neighbor span is sorted by target (out) / source (in); parallel arcs
/// are preserved.
class Graph {
 public:
  Graph() = default;

  VertexId num_vertices() const { return num_vertices_; }
  EdgeId num_edges() const { return static_cast<EdgeId>(out_targets_.size()); }

  /// Out-neighbors of v (targets of arcs v -> *).
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    SOLDIST_DCHECK(v < num_vertices_);
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  /// In-neighbors of v (sources of arcs * -> v).
  std::span<const VertexId> InNeighbors(VertexId v) const {
    SOLDIST_DCHECK(v < num_vertices_);
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }

  VertexId OutDegree(VertexId v) const {
    SOLDIST_DCHECK(v < num_vertices_);
    return static_cast<VertexId>(out_offsets_[v + 1] - out_offsets_[v]);
  }

  VertexId InDegree(VertexId v) const {
    SOLDIST_DCHECK(v < num_vertices_);
    return static_cast<VertexId>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// CSR arrays. The position of a target in out_targets() is the arc's
  /// *out-edge id*; aligned payloads (edge probabilities) index by it.
  const std::vector<EdgeId>& out_offsets() const { return out_offsets_; }
  const std::vector<VertexId>& out_targets() const { return out_targets_; }
  const std::vector<EdgeId>& in_offsets() const { return in_offsets_; }
  const std::vector<VertexId>& in_sources() const { return in_sources_; }

  /// For the in-CSR position i, in_to_out_edge()[i] is the out-edge id of
  /// the same arc: lets reverse scans read payloads stored in out order.
  const std::vector<EdgeId>& in_to_out_edge() const { return in_to_out_; }

  /// Returns the transposed graph (every arc reversed).
  Graph Transposed() const;

  /// Rebuilds the defining edge list (arcs in out-CSR order).
  EdgeList ToEdgeList() const;

 private:
  friend class GraphBuilder;

  VertexId num_vertices_ = 0;
  std::vector<EdgeId> out_offsets_;    // size n+1
  std::vector<VertexId> out_targets_;  // size m
  std::vector<EdgeId> in_offsets_;     // size n+1
  std::vector<VertexId> in_sources_;   // size m
  std::vector<EdgeId> in_to_out_;      // size m
};

}  // namespace soldist

#endif  // SOLDIST_GRAPH_GRAPH_H_
