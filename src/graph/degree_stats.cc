#include "graph/degree_stats.h"

#include <algorithm>
#include <cmath>

namespace soldist {

std::vector<VertexId> DegreeSequence(const Graph& graph, DegreeKind kind) {
  std::vector<VertexId> degrees(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    degrees[v] =
        kind == DegreeKind::kOut ? graph.OutDegree(v) : graph.InDegree(v);
  }
  return degrees;
}

std::vector<std::uint64_t> DegreeHistogram(const Graph& graph,
                                           DegreeKind kind) {
  std::vector<VertexId> degrees = DegreeSequence(graph, kind);
  VertexId max_degree = 0;
  for (VertexId d : degrees) max_degree = std::max(max_degree, d);
  std::vector<std::uint64_t> histogram(static_cast<std::size_t>(max_degree) +
                                       1);
  for (VertexId d : degrees) ++histogram[d];
  return histogram;
}

std::optional<double> PowerLawExponentMle(const Graph& graph,
                                          DegreeKind kind,
                                          VertexId min_degree) {
  SOLDIST_CHECK(min_degree >= 1);
  std::vector<VertexId> degrees = DegreeSequence(graph, kind);
  double log_sum = 0.0;
  std::uint64_t tail = 0;
  // The continuous MLE with the standard -0.5 discreteness correction
  // (Clauset, Shalizi & Newman 2009, Eq. 3.7).
  const double x_min = static_cast<double>(min_degree) - 0.5;
  for (VertexId d : degrees) {
    if (d < min_degree) continue;
    ++tail;
    log_sum += std::log(static_cast<double>(d) / x_min);
  }
  if (tail < 10 || log_sum <= 0.0) return std::nullopt;
  return 1.0 + static_cast<double>(tail) / log_sum;
}

double DegreeGiniCoefficient(const Graph& graph, DegreeKind kind) {
  std::vector<VertexId> degrees = DegreeSequence(graph, kind);
  if (degrees.empty()) return 0.0;
  std::sort(degrees.begin(), degrees.end());
  // G = (2 Σ_i i·x_i) / (n Σ x_i) − (n+1)/n with 1-based ranks.
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    weighted += static_cast<double>(i + 1) * degrees[i];
    total += degrees[i];
  }
  if (total == 0.0) return 0.0;
  double n = static_cast<double>(degrees.size());
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

}  // namespace soldist
