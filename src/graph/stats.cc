#include "graph/stats.h"

#include <algorithm>

#include "graph/builder.h"
#include "graph/traversal.h"

namespace soldist {
namespace {

/// Undirected simple version: one arc per unordered pair, both directions.
Graph UndirectedSimple(const Graph& graph) {
  EdgeList undirected;
  undirected.num_vertices = graph.num_vertices();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) {
      if (v == w) continue;
      undirected.Add(v, w);
      undirected.Add(w, v);
    }
  }
  undirected.RemoveDuplicates();
  return GraphBuilder::FromEdgeList(undirected);
}

}  // namespace

double GlobalClusteringCoefficient(const Graph& graph) {
  Graph u = UndirectedSimple(graph);
  const VertexId n = u.num_vertices();

  // Count triangles with the forward-degree orientation trick: orient each
  // undirected edge toward the higher-(degree, id) endpoint; every triangle
  // has exactly one vertex with two out-arcs in this orientation.
  auto rank_less = [&u](VertexId a, VertexId b) {
    VertexId da = u.OutDegree(a), db = u.OutDegree(b);
    return da != db ? da < db : a < b;
  };
  std::vector<std::vector<VertexId>> forward(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : u.OutNeighbors(v)) {
      if (rank_less(v, w)) forward[v].push_back(w);
    }
  }
  for (auto& adj : forward) std::sort(adj.begin(), adj.end());

  std::uint64_t triangles = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto& fv = forward[v];
    for (std::size_t i = 0; i < fv.size(); ++i) {
      for (std::size_t j = i + 1; j < fv.size(); ++j) {
        VertexId a = fv[i], b = fv[j];
        // Is there an undirected edge {a,b}? Check the forward list of the
        // lower-ranked endpoint.
        VertexId lo = rank_less(a, b) ? a : b;
        VertexId hi = rank_less(a, b) ? b : a;
        if (std::binary_search(forward[lo].begin(), forward[lo].end(), hi)) {
          ++triangles;
        }
      }
    }
  }

  std::uint64_t triples = 0;  // connected triples = sum_v C(deg(v), 2)
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t d = u.OutDegree(v);
    triples += d * (d - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(triples);
}

std::optional<double> AverageDistance(const Graph& graph,
                                      std::uint32_t sample_pairs, Rng* rng) {
  if (sample_pairs == 0 || graph.num_vertices() < 2) return std::nullopt;
  SOLDIST_CHECK(rng != nullptr);
  Graph u = UndirectedSimple(graph);
  BfsReachability bfs(&u);

  std::uint64_t total = 0;
  std::uint64_t reachable_pairs = 0;
  // One BFS serves many pairs: sample sqrt-ish many sources.
  std::uint32_t sources =
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(
          u.num_vertices(), sample_pairs / 16 + 1));
  std::uint32_t pairs_per_source = (sample_pairs + sources - 1) / sources;
  for (std::uint32_t i = 0; i < sources; ++i) {
    auto s = static_cast<VertexId>(rng->UniformInt(u.num_vertices()));
    auto dist = bfs.Distances(s);
    for (std::uint32_t j = 0; j < pairs_per_source; ++j) {
      auto t = static_cast<VertexId>(rng->UniformInt(u.num_vertices()));
      if (t == s) continue;
      if (dist[t] != BfsReachability::kUnreachableDistance) {
        total += dist[t];
        ++reachable_pairs;
      }
    }
  }
  if (reachable_pairs == 0) return std::nullopt;
  return static_cast<double>(total) / static_cast<double>(reachable_pairs);
}

NetworkStats ComputeNetworkStats(const Graph& graph,
                                 std::uint32_t distance_sample_pairs,
                                 Rng* rng) {
  NetworkStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(v));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(v));
  }
  stats.clustering_coefficient = GlobalClusteringCoefficient(graph);
  stats.average_distance = AverageDistance(graph, distance_sample_pairs, rng);
  return stats;
}

}  // namespace soldist
