#include "graph/graph.h"

#include "graph/builder.h"

namespace soldist {

Graph Graph::Transposed() const {
  EdgeList reversed;
  reversed.num_vertices = num_vertices_;
  reversed.arcs.reserve(out_targets_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (EdgeId e = out_offsets_[v]; e < out_offsets_[v + 1]; ++e) {
      reversed.Add(out_targets_[e], v);
    }
  }
  return GraphBuilder::FromEdgeList(reversed);
}

EdgeList Graph::ToEdgeList() const {
  EdgeList edges;
  edges.num_vertices = num_vertices_;
  edges.arcs.reserve(out_targets_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (EdgeId e = out_offsets_[v]; e < out_offsets_[v + 1]; ++e) {
      edges.Add(v, out_targets_[e]);
    }
  }
  return edges;
}

}  // namespace soldist
