#include "graph/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace soldist {

StatusOr<EdgeList> GraphIo::ParseEdgeList(const std::string& text) {
  EdgeList edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto intern = [&remap, &edges](std::uint64_t raw) {
    auto [it, inserted] = remap.try_emplace(raw, edges.num_vertices);
    if (inserted) ++edges.num_vertices;
    return it->second;
  };

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    auto fields = SplitWhitespace(trimmed);
    if (fields.size() < 2) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'src dst', got: " + line);
    }
    std::uint64_t src = 0, dst = 0;
    if (!ParseUint64(fields[0], &src) || !ParseUint64(fields[1], &dst)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": non-numeric vertex id: " + line);
    }
    // Sequence the interning explicitly: argument evaluation order is
    // unspecified, and interning must follow textual order for the dense
    // remap to be deterministic.
    VertexId s = intern(src);
    VertexId d = intern(dst);
    edges.Add(s, d);
  }
  return edges;
}

StatusOr<EdgeList> GraphIo::LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return ParseEdgeList(buffer.str());
}

Status GraphIo::SaveEdgeList(const EdgeList& edges, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for writing: " + path);
  std::fprintf(f, "# soldist edge list: %u vertices, %zu arcs\n",
               edges.num_vertices, edges.arcs.size());
  for (const Arc& a : edges.arcs) {
    if (std::fprintf(f, "%u %u\n", a.src, a.dst) < 0) {
      std::fclose(f);
      return Status::IoError("write failed: " + path);
    }
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace soldist
