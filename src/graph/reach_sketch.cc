#include "graph/reach_sketch.h"

#include <algorithm>

#include "graph/components.h"

namespace soldist {
namespace {

/// Merges `ranks` into `sketch`, keeping the k smallest, both sorted.
void MergeBottomK(std::vector<double>* sketch,
                  const std::vector<double>& ranks, int k) {
  std::vector<double> merged;
  merged.reserve(
      std::min<std::size_t>(sketch->size() + ranks.size(),
                            static_cast<std::size_t>(k)));
  std::size_t i = 0, j = 0;
  while (merged.size() < static_cast<std::size_t>(k) &&
         (i < sketch->size() || j < ranks.size())) {
    double next;
    if (i < sketch->size() &&
        (j >= ranks.size() || (*sketch)[i] <= ranks[j])) {
      next = (*sketch)[i++];
    } else {
      next = ranks[j++];
    }
    // Skip duplicates (a rank reached via two paths counts once).
    if (merged.empty() || merged.back() != next) merged.push_back(next);
  }
  *sketch = std::move(merged);
}

}  // namespace

ReachabilitySketches::ReachabilitySketches(const Graph* graph, int k,
                                           Rng* rng)
    : k_(k) {
  SOLDIST_CHECK(k_ >= 2);
  const VertexId n = graph->num_vertices();
  std::vector<double> rank(n);
  for (VertexId v = 0; v < n; ++v) rank[v] = rng->UnitReal();

  ComponentDecomposition scc = StronglyConnectedComponents(*graph);
  component_of_ = scc.component;
  const std::uint32_t num_components = scc.num_components();
  component_sketch_.assign(num_components, {});

  // Group member ranks per component (sorted for the merge).
  std::vector<std::vector<double>> member_ranks(num_components);
  for (VertexId v = 0; v < n; ++v) {
    member_ranks[scc.component[v]].push_back(rank[v]);
  }
  for (auto& ranks : member_ranks) std::sort(ranks.begin(), ranks.end());

  // Condensation successors, deduplicated per component.
  std::vector<std::vector<std::uint32_t>> successors(num_components);
  for (VertexId v = 0; v < n; ++v) {
    std::uint32_t cv = scc.component[v];
    for (VertexId w : graph->OutNeighbors(v)) {
      std::uint32_t cw = scc.component[w];
      if (cw != cv) successors[cv].push_back(cw);
    }
  }
  for (auto& list : successors) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // Tarjan numbers components in reverse topological order: successors of
  // c always carry SMALLER ids, so ascending order processes them first.
  for (std::uint32_t c = 0; c < num_components; ++c) {
    std::vector<double>& sketch = component_sketch_[c];
    MergeBottomK(&sketch, member_ranks[c], k_);
    for (std::uint32_t successor : successors[c]) {
      SOLDIST_DCHECK(successor < c);
      MergeBottomK(&sketch, component_sketch_[successor], k_);
    }
  }
}

double ReachabilitySketches::EstimateReachable(VertexId v) const {
  const std::vector<double>& sketch = component_sketch_[component_of_[v]];
  if (sketch.size() < static_cast<std::size_t>(k_)) {
    // Fewer than k reachable vertices: the sketch is the exact rank set.
    return static_cast<double>(sketch.size());
  }
  return static_cast<double>(k_ - 1) / sketch.back();
}

}  // namespace soldist
