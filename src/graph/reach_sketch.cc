#include "graph/reach_sketch.h"

#include <algorithm>

namespace soldist {
namespace {

/// Merges the sorted `ranks` into the sorted `sketch` (len entries of the
/// k-slot buffer), keeping the k smallest distinct ranks. `scratch` must
/// hold k doubles.
std::uint8_t MergeBottomK(double* sketch, std::uint8_t len,
                          std::span<const double> ranks, int k,
                          double* scratch) {
  std::size_t out = 0;
  std::size_t i = 0, j = 0;
  while (out < static_cast<std::size_t>(k) &&
         (i < len || j < ranks.size())) {
    double next;
    if (i < len && (j >= ranks.size() || sketch[i] <= ranks[j])) {
      next = sketch[i++];
    } else {
      next = ranks[j++];
    }
    // Skip duplicates (a rank reached via two paths counts once).
    if (out == 0 || scratch[out - 1] != next) scratch[out++] = next;
  }
  std::copy(scratch, scratch + out, sketch);
  return static_cast<std::uint8_t>(out);
}

}  // namespace

double DagSketches::Estimate(std::uint32_t c) const {
  if (IsExact(c)) return static_cast<double>(len[c]);
  return static_cast<double>(k - 1) /
         values[static_cast<std::size_t>(c) * k + (k - 1)];
}

DagSketches BottomKDagSketches(std::span<const std::uint32_t> component_of,
                               VertexId num_vertices,
                               const CondensationDag& dag, int k, Rng* rng) {
  std::vector<double> rank(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) rank[v] = rng->UnitReal();
  return BottomKDagSketches(component_of, num_vertices, dag, k, rank);
}

DagSketches BottomKDagSketches(std::span<const std::uint32_t> component_of,
                               VertexId num_vertices,
                               const CondensationDag& dag, int k,
                               std::span<const double> vertex_ranks) {
  DagSketches out;
  DagSketcher(num_vertices, k)
      .Sketch(component_of, num_vertices, dag, vertex_ranks, &out);
  return out;
}

DagSketcher::DagSketcher(VertexId num_vertices, int k) : k_(k) {
  SOLDIST_CHECK(k_ >= 2 && k_ <= 255);
  member_ranks_.reserve(num_vertices);
  scratch_.resize(k_);
}

void DagSketcher::Sketch(std::span<const std::uint32_t> component_of,
                         VertexId num_vertices, const CondensationDag& dag,
                         std::span<const double> vertex_ranks,
                         DagSketches* out) {
  Sketch(component_of, num_vertices, dag, vertex_ranks, {}, out);
}

void DagSketcher::Sketch(std::span<const std::uint32_t> component_of,
                         VertexId num_vertices, const CondensationDag& dag,
                         std::span<const double> vertex_ranks,
                         std::span<const VertexId> by_rank,
                         DagSketches* out) {
  const std::uint32_t num_components = dag.num_components();

  // Ranks bucketed per component (counting sort); buckets must end up
  // sorted ascending for the bottom-k merges — by construction when the
  // caller supplies the rank order, by per-bucket sorts otherwise.
  bucket_offsets_.assign(static_cast<std::size_t>(num_components) + 1, 0);
  for (VertexId v = 0; v < num_vertices; ++v) {
    ++bucket_offsets_[component_of[v] + 1];
  }
  for (std::uint32_t c = 0; c < num_components; ++c) {
    bucket_offsets_[c + 1] += bucket_offsets_[c];
  }
  member_ranks_.resize(num_vertices);
  cursor_.assign(bucket_offsets_.begin(), bucket_offsets_.end() - 1);
  if (by_rank.empty()) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      member_ranks_[cursor_[component_of[v]]++] = vertex_ranks[v];
    }
    for (std::uint32_t c = 0; c < num_components; ++c) {
      if (bucket_offsets_[c + 1] - bucket_offsets_[c] > 1) {
        std::sort(member_ranks_.begin() + bucket_offsets_[c],
                  member_ranks_.begin() + bucket_offsets_[c + 1]);
      }
    }
  } else {
    for (VertexId v : by_rank) {
      member_ranks_[cursor_[component_of[v]]++] = vertex_ranks[v];
    }
  }

  out->k = k_;
  // resize, not assign: every slot read ([0, len[c]) of each sketch) is
  // written by the merges below, and zero-filling C×k doubles per call
  // costs more than the sketching itself at τ scale.
  out->values.resize(static_cast<std::size_t>(num_components) * k_);
  out->len.resize(num_components);

  // Tarjan numbers components in reverse topological order: successors of
  // c always carry SMALLER ids, so ascending order processes them first.
  for (std::uint32_t c = 0; c < num_components; ++c) {
    double* sketch = out->values.data() + static_cast<std::size_t>(c) * k_;
    std::uint8_t len = MergeBottomK(
        sketch, 0,
        {member_ranks_.data() + bucket_offsets_[c],
         member_ranks_.data() + bucket_offsets_[c + 1]},
        k_, scratch_.data());
    for (std::uint32_t successor : dag.Successors(c)) {
      SOLDIST_DCHECK(successor < c);
      len = MergeBottomK(sketch, len, out->Sketch(successor), k_,
                         scratch_.data());
    }
    out->len[c] = len;
  }
}

ReachabilitySketches::ReachabilitySketches(const Graph* graph, int k,
                                           Rng* rng)
    : k_(k) {
  SOLDIST_CHECK(k_ >= 2);
  ComponentDecomposition scc = StronglyConnectedComponents(*graph);
  CondensationDag dag = CondenseCsr(scc, graph->num_vertices(),
                                    graph->out_offsets(),
                                    graph->out_targets());
  sketches_ = BottomKDagSketches(scc.component, graph->num_vertices(), dag,
                                 k_, rng);
  component_of_ = std::move(scc.component);
}

double ReachabilitySketches::EstimateReachable(VertexId v) const {
  return sketches_.Estimate(component_of_[v]);
}

}  // namespace soldist
