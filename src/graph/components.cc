#include "graph/components.h"

#include <algorithm>

namespace soldist {

std::uint32_t ComponentDecomposition::LargestSize() const {
  if (size.empty()) return 0;
  return *std::max_element(size.begin(), size.end());
}

ComponentDecomposition WeaklyConnectedComponents(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  ComponentDecomposition out;
  out.component.assign(n, ~0u);
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId start = 0; start < n; ++start) {
    if (out.component[start] != ~0u) continue;
    auto c = static_cast<std::uint32_t>(out.size.size());
    out.size.push_back(0);
    queue.clear();
    queue.push_back(start);
    out.component[start] = c;
    std::size_t head = 0;
    while (head < queue.size()) {
      VertexId u = queue[head++];
      ++out.size[c];
      for (VertexId w : graph.OutNeighbors(u)) {
        if (out.component[w] == ~0u) {
          out.component[w] = c;
          queue.push_back(w);
        }
      }
      for (VertexId w : graph.InNeighbors(u)) {
        if (out.component[w] == ~0u) {
          out.component[w] = c;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

ComponentDecomposition StronglyConnectedComponents(const Graph& graph) {
  return StronglyConnectedComponents(graph.num_vertices(),
                                     graph.out_offsets(),
                                     graph.out_targets());
}

ComponentDecomposition StronglyConnectedComponents(
    VertexId num_vertices, std::span<const EdgeId> out_offsets,
    std::span<const VertexId> out_targets) {
  ComponentDecomposition out;
  SccSolver(num_vertices)
      .Solve(num_vertices, out_offsets, out_targets, &out);
  return out;
}

namespace {

/// Iterative Tarjan (recursion would overflow on long paths — BA_s is
/// essentially a 1,000-vertex tree).
constexpr std::uint32_t kUnvisited = ~0u;

}  // namespace

SccSolver::SccSolver(VertexId num_vertices) {
  index_.reserve(num_vertices);
  lowlink_.reserve(num_vertices);
  on_stack_.reserve(num_vertices);
  stack_.reserve(num_vertices);
}

SccSolver::~SccSolver() = default;

void SccSolver::Solve(VertexId num_vertices,
                      std::span<const EdgeId> out_offsets,
                      std::span<const VertexId> out_targets,
                      ComponentDecomposition* out) {
  // Only index_ needs re-initialization: lowlink_ is written by
  // start_vertex before any read, on_stack_ ends a run all-zero (every
  // started vertex is popped and cleared when its component closes), and
  // every component[] entry is written when its vertex closes.
  index_.assign(num_vertices, kUnvisited);
  lowlink_.resize(num_vertices);
  on_stack_.resize(num_vertices, 0);
  stack_.clear();
  frames_.clear();
  out->component.resize(num_vertices);
  out->size.clear();

  std::uint32_t next_index = 0;
  auto start_vertex = [&](VertexId v) {
    index_[v] = lowlink_[v] = next_index++;
    stack_.push_back(v);
    on_stack_[v] = 1;
  };

  for (VertexId root = 0; root < num_vertices; ++root) {
    if (index_[root] != kUnvisited) continue;
    frames_.push_back({root, out_offsets[root]});
    start_vertex(root);
    while (!frames_.empty()) {
      Frame& frame = frames_.back();
      VertexId v = frame.v;
      if (frame.next_edge < out_offsets[v + 1]) {
        VertexId w = out_targets[frame.next_edge++];
        if (index_[w] == kUnvisited) {
          frames_.push_back({w, out_offsets[w]});
          start_vertex(w);
        } else if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
        continue;
      }
      // All neighbors processed: close v.
      if (lowlink_[v] == index_[v]) {
        auto c = static_cast<std::uint32_t>(out->size.size());
        out->size.push_back(0);
        while (true) {
          VertexId w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          out->component[w] = c;
          ++out->size[c];
          if (w == v) break;
        }
      }
      frames_.pop_back();
      if (!frames_.empty()) {
        VertexId parent = frames_.back().v;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }
}

void CondenseCsrInto(const ComponentDecomposition& scc,
                     VertexId num_vertices,
                     std::span<const EdgeId> out_offsets,
                     std::span<const VertexId> out_targets,
                     CondenseScratch* scratch, CondensationDag* out) {
  const std::uint32_t num_components = scc.num_components();
  SOLDIST_CHECK(out_targets.size() < (1ull << 32))
      << "condensation over >= 2^32 arcs would overflow the 32-bit DAG "
         "offsets";
  const std::uint32_t* comp_of = scc.component.data();

  // Pass 1: count cross-component arcs per source component (duplicates
  // included) and prefix-sum into scratch offsets.
  scratch->counts.assign(static_cast<std::size_t>(num_components) + 1, 0);
  for (VertexId v = 0; v < num_vertices; ++v) {
    const std::uint32_t cv = comp_of[v];
    for (EdgeId e = out_offsets[v]; e < out_offsets[v + 1]; ++e) {
      if (comp_of[out_targets[e]] != cv) ++scratch->counts[cv + 1];
    }
  }
  for (std::uint32_t c = 0; c < num_components; ++c) {
    scratch->counts[c + 1] += scratch->counts[c];
  }

  // Pass 2: scatter targets (with duplicates) into scratch.
  scratch->dup_targets.resize(scratch->counts[num_components]);
  scratch->cursor.assign(scratch->counts.begin(),
                         scratch->counts.end() - 1);
  for (VertexId v = 0; v < num_vertices; ++v) {
    const std::uint32_t cv = comp_of[v];
    for (EdgeId e = out_offsets[v]; e < out_offsets[v + 1]; ++e) {
      const std::uint32_t cw = comp_of[out_targets[e]];
      if (cw != cv) scratch->dup_targets[scratch->cursor[cv]++] = cw;
    }
  }

  // Pass 3: dedup-compact in place (epoch stamp per source component),
  // then copy the exact-sized result into the output CSR.
  scratch->stamp.assign(num_components, ~0u);
  out->offsets.resize(static_cast<std::size_t>(num_components) + 1);
  std::uint32_t write = 0;
  std::uint32_t read = 0;
  for (std::uint32_t c = 0; c < num_components; ++c) {
    const std::uint32_t read_end = scratch->counts[c + 1];
    out->offsets[c] = write;
    for (; read < read_end; ++read) {
      const std::uint32_t cw = scratch->dup_targets[read];
      if (scratch->stamp[cw] == c) continue;
      scratch->stamp[cw] = c;
      SOLDIST_DCHECK(cw < c);  // Tarjan's reverse-topological numbering
      scratch->dup_targets[write++] = cw;
    }
  }
  out->offsets[num_components] = write;
  out->targets.assign(scratch->dup_targets.begin(),
                      scratch->dup_targets.begin() + write);
}

CondensationDag CondenseCsr(const ComponentDecomposition& scc,
                            VertexId num_vertices,
                            std::span<const EdgeId> out_offsets,
                            std::span<const VertexId> out_targets) {
  CondenseScratch scratch;
  CondensationDag dag;
  CondenseCsrInto(scc, num_vertices, out_offsets, out_targets, &scratch,
                  &dag);
  return dag;
}

}  // namespace soldist
