#include "graph/components.h"

#include <algorithm>

namespace soldist {

std::uint32_t ComponentDecomposition::LargestSize() const {
  if (size.empty()) return 0;
  return *std::max_element(size.begin(), size.end());
}

ComponentDecomposition WeaklyConnectedComponents(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  ComponentDecomposition out;
  out.component.assign(n, ~0u);
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (VertexId start = 0; start < n; ++start) {
    if (out.component[start] != ~0u) continue;
    auto c = static_cast<std::uint32_t>(out.size.size());
    out.size.push_back(0);
    queue.clear();
    queue.push_back(start);
    out.component[start] = c;
    std::size_t head = 0;
    while (head < queue.size()) {
      VertexId u = queue[head++];
      ++out.size[c];
      for (VertexId w : graph.OutNeighbors(u)) {
        if (out.component[w] == ~0u) {
          out.component[w] = c;
          queue.push_back(w);
        }
      }
      for (VertexId w : graph.InNeighbors(u)) {
        if (out.component[w] == ~0u) {
          out.component[w] = c;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

namespace {

/// Iterative Tarjan SCC; recursion would overflow on long paths
/// (e.g. BA_s is essentially a 1,000-vertex tree).
class TarjanScc {
 public:
  explicit TarjanScc(const Graph& graph) : graph_(graph) {
    const VertexId n = graph.num_vertices();
    index_.assign(n, kUnvisited);
    lowlink_.assign(n, 0);
    on_stack_.assign(n, false);
    result_.component.assign(n, 0);
  }

  ComponentDecomposition Run() {
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (index_[v] == kUnvisited) Visit(v);
    }
    return std::move(result_);
  }

 private:
  static constexpr std::uint32_t kUnvisited = ~0u;

  struct Frame {
    VertexId v;
    std::size_t next_neighbor;
  };

  void Visit(VertexId root) {
    frames_.push_back({root, 0});
    StartVertex(root);
    while (!frames_.empty()) {
      Frame& frame = frames_.back();
      VertexId v = frame.v;
      auto neighbors = graph_.OutNeighbors(v);
      if (frame.next_neighbor < neighbors.size()) {
        VertexId w = neighbors[frame.next_neighbor++];
        if (index_[w] == kUnvisited) {
          frames_.push_back({w, 0});
          StartVertex(w);
        } else if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
        continue;
      }
      // All neighbors processed: close v.
      if (lowlink_[v] == index_[v]) {
        auto c = static_cast<std::uint32_t>(result_.size.size());
        result_.size.push_back(0);
        while (true) {
          VertexId w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          result_.component[w] = c;
          ++result_.size[c];
          if (w == v) break;
        }
      }
      frames_.pop_back();
      if (!frames_.empty()) {
        VertexId parent = frames_.back().v;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  void StartVertex(VertexId v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = true;
  }

  const Graph& graph_;
  std::uint32_t next_index_ = 0;
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<VertexId> stack_;
  std::vector<Frame> frames_;
  ComponentDecomposition result_;
};

}  // namespace

ComponentDecomposition StronglyConnectedComponents(const Graph& graph) {
  return TarjanScc(graph).Run();
}

}  // namespace soldist
