// EdgeList: the interchange format between generators / file loaders and
// the CSR graph builder.

#ifndef SOLDIST_GRAPH_EDGE_LIST_H_
#define SOLDIST_GRAPH_EDGE_LIST_H_

#include <utility>
#include <vector>

#include "graph/types.h"

namespace soldist {

/// A directed arc u -> v.
struct Arc {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Arc&, const Arc&) = default;
  friend auto operator<=>(const Arc&, const Arc&) = default;
};

/// \brief Directed edge list with an explicit vertex count.
///
/// Vertex ids must lie in [0, num_vertices); Validate() checks.
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<Arc> arcs;

  void Add(VertexId src, VertexId dst) { arcs.push_back({src, dst}); }

  /// True iff all endpoints are within range.
  bool Validate() const;

  /// Sorts arcs by (src, dst).
  void Sort();

  /// Removes exact duplicate arcs (keeps one copy); sorts as a side effect.
  void RemoveDuplicates();

  /// Removes arcs u -> u. Self-loops are inert under the IC model (the
  /// source is already active), so generators and loaders drop them.
  void RemoveSelfLoops();

  /// Appends the reverse arc of every arc: turns an undirected edge set
  /// (stored one direction per edge) into the bidirected form the paper
  /// uses for Karate / collaboration networks.
  void MakeBidirected();
};

}  // namespace soldist

#endif  // SOLDIST_GRAPH_EDGE_LIST_H_
