// GraphBuilder: edge list -> CSR Graph.

#ifndef SOLDIST_GRAPH_BUILDER_H_
#define SOLDIST_GRAPH_BUILDER_H_

#include "graph/graph.h"

namespace soldist {

/// \brief Constructs CSR graphs from edge lists.
class GraphBuilder {
 public:
  /// Builds the CSR representation. The edge list must Validate(); arcs
  /// are taken as-is (parallel arcs preserved, self-loops preserved --
  /// clean the list first if undesired).
  static Graph FromEdgeList(const EdgeList& edges);
};

}  // namespace soldist

#endif  // SOLDIST_GRAPH_BUILDER_H_
