#include "graph/traversal.h"

namespace soldist {

BfsReachability::BfsReachability(const Graph* graph)
    : graph_(graph), visited_(graph->num_vertices()) {
  queue_.reserve(graph->num_vertices());
}

std::uint64_t BfsReachability::CountReachable(
    std::span<const VertexId> sources) {
  visited_.NextEpoch();
  queue_.clear();
  for (VertexId s : sources) {
    if (visited_.Mark(s)) queue_.push_back(s);
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    VertexId u = queue_[head++];
    for (VertexId w : graph_->OutNeighbors(u)) {
      if (visited_.Mark(w)) queue_.push_back(w);
    }
  }
  return queue_.size();
}

std::vector<VertexId> BfsReachability::ReachableSet(
    std::span<const VertexId> sources) {
  CountReachable(sources);
  return queue_;
}

std::vector<std::uint32_t> BfsReachability::Distances(VertexId source) {
  std::vector<std::uint32_t> dist(graph_->num_vertices(),
                                  kUnreachableDistance);
  visited_.NextEpoch();
  queue_.clear();
  visited_.Mark(source);
  queue_.push_back(source);
  dist[source] = 0;
  std::size_t head = 0;
  while (head < queue_.size()) {
    VertexId u = queue_[head++];
    for (VertexId w : graph_->OutNeighbors(u)) {
      if (visited_.Mark(w)) {
        dist[w] = dist[u] + 1;
        queue_.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace soldist
