// Fundamental identifier types for the graph substrate.

#ifndef SOLDIST_GRAPH_TYPES_H_
#define SOLDIST_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace soldist {

/// Vertex identifier: dense ids in [0, n).
using VertexId = std::uint32_t;

/// Edge identifier / edge count type (graphs may exceed 2^32 arcs at
/// paper-full scale).
using EdgeId = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

}  // namespace soldist

#endif  // SOLDIST_GRAPH_TYPES_H_
