#include "graph/builder.h"

#include <algorithm>
#include <numeric>

namespace soldist {

Graph GraphBuilder::FromEdgeList(const EdgeList& edges) {
  SOLDIST_CHECK(edges.Validate()) << "edge list has out-of-range endpoints";
  const VertexId n = edges.num_vertices;
  const std::size_t m = edges.arcs.size();

  Graph g;
  g.num_vertices_ = n;

  // Out-CSR via counting sort on src (stable in dst order after the
  // per-bucket sort below).
  g.out_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Arc& a : edges.arcs) {
    ++g.out_offsets_[static_cast<std::size_t>(a.src) + 1];
  }
  std::partial_sum(g.out_offsets_.begin(), g.out_offsets_.end(),
                   g.out_offsets_.begin());
  g.out_targets_.resize(m);
  {
    std::vector<EdgeId> cursor(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
    for (const Arc& a : edges.arcs) {
      g.out_targets_[cursor[a.src]++] = a.dst;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(g.out_targets_.begin() +
                  static_cast<std::ptrdiff_t>(g.out_offsets_[v]),
              g.out_targets_.begin() +
                  static_cast<std::ptrdiff_t>(g.out_offsets_[v + 1]));
  }

  // In-CSR; record for every in-position the out-edge id of the same arc
  // so payloads stored in out order are addressable from reverse scans.
  g.in_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId t : g.out_targets_) {
    ++g.in_offsets_[static_cast<std::size_t>(t) + 1];
  }
  std::partial_sum(g.in_offsets_.begin(), g.in_offsets_.end(),
                   g.in_offsets_.begin());
  g.in_sources_.resize(m);
  g.in_to_out_.resize(m);
  {
    std::vector<EdgeId> cursor(g.in_offsets_.begin(),
                               g.in_offsets_.end() - 1);
    for (VertexId src = 0; src < n; ++src) {
      for (EdgeId e = g.out_offsets_[src]; e < g.out_offsets_[src + 1]; ++e) {
        VertexId dst = g.out_targets_[e];
        EdgeId pos = cursor[dst]++;
        g.in_sources_[pos] = src;
        g.in_to_out_[pos] = e;
      }
    }
  }
  return g;
}

}  // namespace soldist
