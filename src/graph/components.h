// Connected-component analysis. The paper's traversal-cost discussion
// (Sections 5.3, 6) hinges on when a giant component emerges in the
// live-edge random graph; these helpers quantify that.

#ifndef SOLDIST_GRAPH_COMPONENTS_H_
#define SOLDIST_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace soldist {

/// \brief Result of a weakly-connected-component decomposition.
struct ComponentDecomposition {
  /// component[v] is the component index of v, in [0, num_components).
  std::vector<std::uint32_t> component;
  /// size[c] is the number of vertices in component c.
  std::vector<std::uint32_t> size;

  std::uint32_t num_components() const {
    return static_cast<std::uint32_t>(size.size());
  }
  /// Size of the largest component (0 for the empty graph).
  std::uint32_t LargestSize() const;
};

/// Weakly connected components (arcs treated as undirected).
ComponentDecomposition WeaklyConnectedComponents(const Graph& graph);

/// Strongly connected components (Tarjan, iterative).
ComponentDecomposition StronglyConnectedComponents(const Graph& graph);

}  // namespace soldist

#endif  // SOLDIST_GRAPH_COMPONENTS_H_
