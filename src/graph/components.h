// Connected-component analysis. The paper's traversal-cost discussion
// (Sections 5.3, 6) hinges on when a giant component emerges in the
// live-edge random graph; these helpers quantify that. The SCC pass and
// the condensation utilities below also power the condensed Snapshot
// backend (core/snapshot.h Mode::kCondensed): each sampled live-edge
// graph is collapsed to its SCC DAG once, and greedy reachability runs
// component-granular from then on.

#ifndef SOLDIST_GRAPH_COMPONENTS_H_
#define SOLDIST_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace soldist {

/// \brief Result of a weakly-connected-component decomposition.
struct ComponentDecomposition {
  /// component[v] is the component index of v, in [0, num_components).
  std::vector<std::uint32_t> component;
  /// size[c] is the number of vertices in component c.
  std::vector<std::uint32_t> size;

  std::uint32_t num_components() const {
    return static_cast<std::uint32_t>(size.size());
  }
  /// Size of the largest component (0 for the empty graph).
  std::uint32_t LargestSize() const;
};

/// Weakly connected components (arcs treated as undirected).
ComponentDecomposition WeaklyConnectedComponents(const Graph& graph);

/// Strongly connected components (Tarjan, iterative).
///
/// Component ids come out in REVERSE topological order of the
/// condensation: every successor of component c has an id < c. Both the
/// reachability sketches and the condensed snapshot backend rely on this
/// numbering for their single-pass bottom-up merges.
ComponentDecomposition StronglyConnectedComponents(const Graph& graph);

/// StronglyConnectedComponents over a raw forward CSR — the sampled
/// live-edge snapshots (sim/snapshot_sampler.h) are CSR-only, never full
/// Graph objects, so the condensation path uses this overload. Same
/// reverse-topological numbering guarantee.
ComponentDecomposition StronglyConnectedComponents(
    VertexId num_vertices, std::span<const EdgeId> out_offsets,
    std::span<const VertexId> out_targets);

/// \brief Scratch-reusing Tarjan solver for repeated decompositions.
///
/// The condensed Snapshot build runs one SCC pass per sampled live-edge
/// graph (τ up to 2^16 per estimator); this class keeps the DFS arrays
/// alive across calls so each pass costs traversal work, not allocator
/// churn. The free functions above are one-shot wrappers.
class SccSolver {
 public:
  explicit SccSolver(VertexId num_vertices);
  ~SccSolver();

  /// Decomposes the CSR (must address < num_vertices vertices) into
  /// *out, overwriting it. Same reverse-topological numbering as
  /// StronglyConnectedComponents.
  void Solve(VertexId num_vertices, std::span<const EdgeId> out_offsets,
             std::span<const VertexId> out_targets,
             ComponentDecomposition* out);

 private:
  struct Frame {
    VertexId v;
    EdgeId next_edge;
  };

  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<std::uint8_t> on_stack_;
  std::vector<VertexId> stack_;
  std::vector<Frame> frames_;
};

/// \brief The condensation DAG of an SCC decomposition, in forward CSR
/// form over component ids with cross-component arcs deduplicated.
struct CondensationDag {
  /// 32-bit offsets: a single condensation with >= 2^32 cross-component
  /// arcs is rejected by CondenseCsr (it would need a 16 GiB+ target
  /// array); per-snapshot DAGs are orders of magnitude below that, and
  /// halving the offsets matters because the condensed Snapshot backend
  /// keeps two of these per sampled snapshot.
  std::vector<std::uint32_t> offsets;   ///< num_components + 1
  std::vector<std::uint32_t> targets;   ///< deduplicated successor ids

  std::uint32_t num_components() const {
    return offsets.empty()
               ? 0
               : static_cast<std::uint32_t>(offsets.size()) - 1;
  }
  EdgeId num_edges() const { return static_cast<EdgeId>(targets.size()); }

  std::span<const std::uint32_t> Successors(std::uint32_t c) const {
    return {targets.data() + offsets[c], targets.data() + offsets[c + 1]};
  }
};

/// \brief Reusable scratch for CondenseCsrInto (duplicate-included
/// counts/targets, dedup stamps, scatter cursors).
struct CondenseScratch {
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> cursor;
  std::vector<std::uint32_t> dup_targets;
  std::vector<std::uint32_t> stamp;
};

/// Builds the deduplicated condensation DAG of `scc` over the CSR
/// (num_vertices, out_offsets, out_targets) into *out, allocating only
/// the exact-sized output arrays — all working storage lives in
/// *scratch so τ-scale loops (one condensation per sampled snapshot)
/// pay traversal work, not allocator churn. O(n + m + C): duplicates
/// are removed with an epoch stamp per source component, no sorting.
/// With Tarjan's numbering every emitted target id is < its source id.
void CondenseCsrInto(const ComponentDecomposition& scc,
                     VertexId num_vertices,
                     std::span<const EdgeId> out_offsets,
                     std::span<const VertexId> out_targets,
                     CondenseScratch* scratch, CondensationDag* out);

/// One-shot wrapper over CondenseCsrInto (scratch allocated per call).
CondensationDag CondenseCsr(const ComponentDecomposition& scc,
                            VertexId num_vertices,
                            std::span<const EdgeId> out_offsets,
                            std::span<const VertexId> out_targets);

}  // namespace soldist

#endif  // SOLDIST_GRAPH_COMPONENTS_H_
