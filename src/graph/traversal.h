// Reusable BFS machinery: epoch-marked visited sets and restartable queues
// avoid O(n) clearing between the millions of tiny traversals the samplers
// perform.

#ifndef SOLDIST_GRAPH_TRAVERSAL_H_
#define SOLDIST_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace soldist {

/// \brief O(1)-reset visited marker backed by a generation counter.
///
/// Mark(v) stamps v with the current epoch; NextEpoch() invalidates all
/// marks in O(1). Overflow of the 32-bit epoch triggers a full clear.
class VisitedMarker {
 public:
  explicit VisitedMarker(std::size_t size) : stamp_(size, 0), epoch_(1) {}

  void Resize(std::size_t size) { stamp_.assign(size, 0); epoch_ = 1; }

  void NextEpoch() {
    if (++epoch_ == 0) {  // wrapped: all stamps stale but may collide
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  bool IsMarked(VertexId v) const { return stamp_[v] == epoch_; }

  /// Marks v; returns true if it was unmarked (first visit).
  bool Mark(VertexId v) {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }

  std::size_t size() const { return stamp_.size(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_;
};

/// \brief Forward-BFS reachability over the full graph (every arc present).
///
/// Used for graph statistics and the exact computation r_G(S) on
/// deterministic graphs; the stochastic samplers have their own loops.
class BfsReachability {
 public:
  explicit BfsReachability(const Graph* graph);

  /// Number of vertices reachable from `sources` (sources included).
  std::uint64_t CountReachable(std::span<const VertexId> sources);

  /// All vertices reachable from `sources`, in visit order.
  std::vector<VertexId> ReachableSet(std::span<const VertexId> sources);

  /// BFS hop distances from `source`; kUnreachableDistance if unreachable.
  static constexpr std::uint32_t kUnreachableDistance = ~0u;
  std::vector<std::uint32_t> Distances(VertexId source);

 private:
  const Graph* graph_;
  VisitedMarker visited_;
  std::vector<VertexId> queue_;
};

}  // namespace soldist

#endif  // SOLDIST_GRAPH_TRAVERSAL_H_
