// Network statistics for the paper's Table 3: degree extremes, global
// clustering coefficient, average distance.

#ifndef SOLDIST_GRAPH_STATS_H_
#define SOLDIST_GRAPH_STATS_H_

#include <cstdint>
#include <optional>

#include "graph/graph.h"
#include "random/rng.h"

namespace soldist {

/// Statistics reported in the paper's Table 3.
struct NetworkStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  VertexId max_out_degree = 0;  ///< Δ+
  VertexId max_in_degree = 0;   ///< Δ−
  double clustering_coefficient = 0.0;
  /// Mean BFS distance between reachable random pairs on the undirected
  /// version; unset when not computed (large graphs).
  std::optional<double> average_distance;
};

/// \brief Computes Table-3 statistics.
///
/// \param graph input (directed; clustering/distance use the undirected
///        simple version, matching how KONECT/SNAP report them)
/// \param distance_sample_pairs pairs sampled for the average distance;
///        0 skips it (paper leaves "-" for larger graphs)
/// \param rng randomness for pair sampling (may be null when skipping)
NetworkStats ComputeNetworkStats(const Graph& graph,
                                 std::uint32_t distance_sample_pairs,
                                 Rng* rng);

/// Global clustering coefficient: 3 * triangles / connected triples, on
/// the undirected simple version of `graph`.
double GlobalClusteringCoefficient(const Graph& graph);

/// Mean BFS distance between `sample_pairs` random reachable pairs on the
/// undirected simple version. Returns nullopt if no pair was reachable.
std::optional<double> AverageDistance(const Graph& graph,
                                      std::uint32_t sample_pairs, Rng* rng);

}  // namespace soldist

#endif  // SOLDIST_GRAPH_STATS_H_
