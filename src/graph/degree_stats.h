// Degree-distribution analysis: histogram and power-law tail estimation
// for verifying that generated proxies share the scale-free property the
// paper's Section 4.2.1 demands of its datasets.

#ifndef SOLDIST_GRAPH_DEGREE_STATS_H_
#define SOLDIST_GRAPH_DEGREE_STATS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace soldist {

/// Which degree to analyze.
enum class DegreeKind { kOut, kIn };

/// degrees[v] for all v.
std::vector<VertexId> DegreeSequence(const Graph& graph, DegreeKind kind);

/// histogram[d] = number of vertices with degree d (dense up to max).
std::vector<std::uint64_t> DegreeHistogram(const Graph& graph,
                                           DegreeKind kind);

/// \brief Hill maximum-likelihood estimate of the power-law exponent γ
/// for the tail d >= d_min: γ̂ = 1 + n_tail / Σ ln(d / (d_min − 0.5)).
///
/// Returns nullopt when fewer than 10 vertices lie in the tail. Scale-free
/// networks typically give γ ∈ [2, 3] (paper Section 4.2.1).
std::optional<double> PowerLawExponentMle(const Graph& graph,
                                          DegreeKind kind,
                                          VertexId min_degree);

/// Gini coefficient of the degree sequence (0 = all equal, → 1 = extreme
/// concentration): a scale-free-ness smell test robust to small samples.
double DegreeGiniCoefficient(const Graph& graph, DegreeKind kind);

}  // namespace soldist

#endif  // SOLDIST_GRAPH_DEGREE_STATS_H_
