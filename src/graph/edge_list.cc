#include "graph/edge_list.h"

#include <algorithm>

namespace soldist {

bool EdgeList::Validate() const {
  for (const Arc& a : arcs) {
    if (a.src >= num_vertices || a.dst >= num_vertices) return false;
  }
  return true;
}

void EdgeList::Sort() {
  std::sort(arcs.begin(), arcs.end());
}

void EdgeList::RemoveDuplicates() {
  Sort();
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
}

void EdgeList::RemoveSelfLoops() {
  arcs.erase(std::remove_if(arcs.begin(), arcs.end(),
                            [](const Arc& a) { return a.src == a.dst; }),
             arcs.end());
}

void EdgeList::MakeBidirected() {
  std::size_t original = arcs.size();
  arcs.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    arcs.push_back({arcs[i].dst, arcs[i].src});
  }
}

}  // namespace soldist
