#include "store/arena_storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <utility>

#include "store/fault_injection.h"
#include "util/logging.h"

namespace soldist {
namespace store {
namespace {

// Store-local LEB128 codec. sim/rr_arena.h exports an identical pair for
// CompressedRrCollection; store/ keeps its own so the dependency points
// sim -> store only.
void PutVarint(std::uint64_t v, std::vector<std::uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t GetVarint(const std::uint8_t* data, std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    std::uint8_t byte = data[(*pos)++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    SOLDIST_DCHECK(shift < 64);
  }
  return v;
}

/// Decodes a count-prefixed gap stream (first entry absolute) starting at
/// data[begin] into *out.
template <typename T>
void DecodeGapList(const std::uint8_t* data, std::uint64_t begin,
                   std::vector<T>* out) {
  out->clear();
  std::size_t pos = begin;
  const std::uint64_t count = GetVarint(data, &pos);
  std::uint64_t value = 0;
  for (std::uint64_t j = 0; j < count; ++j) {
    value += GetVarint(data, &pos);
    out->push_back(static_cast<T>(value));
  }
}

std::uint64_t VectorBytes(const std::vector<std::uint8_t>& v) {
  return v.size();
}
template <typename T>
std::uint64_t VectorBytes(const std::vector<T>& v) {
  return v.size() * sizeof(T);
}

}  // namespace

const char* ArenaBackendName(ArenaBackend backend) {
  switch (backend) {
    case ArenaBackend::kFlat:
      return "flat";
    case ArenaBackend::kCompressed:
      return "compressed";
    case ArenaBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

StatusOr<ArenaBackend> ParseArenaBackend(const std::string& name) {
  if (name == "flat") return ArenaBackend::kFlat;
  if (name == "compressed") return ArenaBackend::kCompressed;
  if (name == "mmap") return ArenaBackend::kMmap;
  return Status::InvalidArgument("unknown arena backend '" + name +
                                 "' (expected flat|compressed|mmap)");
}

Status StorageOptions::Validate() const {
  if (backend == ArenaBackend::kMmap && spill_dir.empty()) {
    return Status::InvalidArgument(
        "arena backend 'mmap' requires a spill directory (--arena-dir)");
  }
  if (resident_chunk_bytes == 0) {
    return Status::InvalidArgument("resident_chunk_bytes must be >= 1");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// FlatStorage
// ---------------------------------------------------------------------

FlatStorage::FlatStorage(RrFlatPayload&& payload, VertexId num_vertices)
    : RrStorage(num_vertices,
                static_cast<std::uint64_t>(payload.set_offsets.size()) - 1,
                static_cast<std::uint64_t>(payload.flat.size())),
      payload_(std::move(payload)) {
  SOLDIST_CHECK(!payload_.set_offsets.empty());
  SOLDIST_CHECK(payload_.index_offsets.size() ==
                static_cast<std::size_t>(num_vertices) + 1);
}

std::uint64_t FlatStorage::MemoryBytes() const {
  return VectorBytes(payload_.flat) + VectorBytes(payload_.set_offsets) +
         VectorBytes(payload_.index_ids) +
         VectorBytes(payload_.index_offsets);
}

std::span<const VertexId> FlatStorage::Set(std::uint64_t i,
                                           StorageScratch*) const {
  SOLDIST_DCHECK(i < num_sets_);
  return {payload_.flat.data() + payload_.set_offsets[i],
          payload_.flat.data() + payload_.set_offsets[i + 1]};
}

std::span<const std::uint32_t> FlatStorage::InvertedAll(
    VertexId v, StorageScratch*) const {
  SOLDIST_DCHECK(v < num_vertices_);
  return {payload_.index_ids.data() + payload_.index_offsets[v],
          payload_.index_ids.data() + payload_.index_offsets[v + 1]};
}

// ---------------------------------------------------------------------
// EncodeRrPayload
// ---------------------------------------------------------------------

EncodedArena EncodeRrPayload(const RrFlatPayload& payload,
                             VertexId num_vertices) {
  EncodedArena enc;
  const std::uint64_t num_sets =
      static_cast<std::uint64_t>(payload.set_offsets.size()) - 1;
  enc.set_offsets.reserve(num_sets + 1);
  enc.set_offsets.push_back(0);
  std::vector<VertexId> sorted;
  for (std::uint64_t i = 0; i < num_sets; ++i) {
    sorted.assign(payload.flat.begin() + payload.set_offsets[i],
                  payload.flat.begin() + payload.set_offsets[i + 1]);
    std::sort(sorted.begin(), sorted.end());
    PutVarint(sorted.size(), &enc.set_bytes);
    VertexId prev = 0;
    for (std::size_t j = 0; j < sorted.size(); ++j) {
      // First entry absolute, rest gaps (>= 1: RR-set members are
      // distinct) — same convention as CompressedRrCollection::Add.
      PutVarint(j == 0 ? sorted[0] : sorted[j] - prev, &enc.set_bytes);
      prev = sorted[j];
    }
    enc.set_offsets.push_back(
        static_cast<std::uint64_t>(enc.set_bytes.size()));
  }
  enc.index_offsets.reserve(static_cast<std::size_t>(num_vertices) + 2);
  enc.index_offsets.push_back(0);
  for (VertexId v = 0; v < num_vertices; ++v) {
    const std::uint32_t* begin =
        payload.index_ids.data() + payload.index_offsets[v];
    const std::uint32_t* end =
        payload.index_ids.data() + payload.index_offsets[v + 1];
    PutVarint(static_cast<std::uint64_t>(end - begin), &enc.index_bytes);
    std::uint32_t prev = 0;
    for (const std::uint32_t* p = begin; p != end; ++p) {
      PutVarint(p == begin ? *p : *p - prev, &enc.index_bytes);
      prev = *p;
    }
    enc.index_offsets.push_back(
        static_cast<std::uint64_t>(enc.index_bytes.size()));
  }
  return enc;
}

// ---------------------------------------------------------------------
// HotListCache
// ---------------------------------------------------------------------

bool HotListCache::Get(VertexId v, std::vector<std::uint32_t>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(v);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  *out = it->second->ids;
  return true;
}

void HotListCache::Put(VertexId v, std::span<const std::uint32_t> ids) const {
  const std::uint64_t cost =
      sizeof(Entry) + ids.size() * sizeof(std::uint32_t);
  if (cost > budget_bytes_) return;  // never admit beyond the whole budget
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(v);
  if (it != map_.end()) {  // racing decoder already admitted it
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(
      Entry{v, std::vector<std::uint32_t>(ids.begin(), ids.end())});
  map_.emplace(v, lru_.begin());
  bytes_ += cost;
  while (bytes_ > budget_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= sizeof(Entry) + victim.ids.size() * sizeof(std::uint32_t);
    map_.erase(victim.vertex);
    lru_.pop_back();
  }
}

std::uint64_t HotListCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t HotListCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t HotListCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

// ---------------------------------------------------------------------
// CompressedStorage
// ---------------------------------------------------------------------

CompressedStorage::CompressedStorage(EncodedArena&& encoded,
                                     VertexId num_vertices,
                                     std::uint64_t num_sets,
                                     std::uint64_t total_entries,
                                     std::uint64_t hot_list_bytes)
    : RrStorage(num_vertices, num_sets, total_entries),
      encoded_(std::move(encoded)),
      hot_(hot_list_bytes) {
  SOLDIST_CHECK(encoded_.set_offsets.size() ==
                static_cast<std::size_t>(num_sets) + 1);
  SOLDIST_CHECK(encoded_.index_offsets.size() ==
                static_cast<std::size_t>(num_vertices) + 1);
}

std::uint64_t CompressedStorage::MemoryBytes() const {
  return VectorBytes(encoded_.set_bytes) + VectorBytes(encoded_.set_offsets) +
         VectorBytes(encoded_.index_bytes) +
         VectorBytes(encoded_.index_offsets);
}

std::uint64_t CompressedStorage::ResidentBytes() const {
  return MemoryBytes() + hot_.bytes();
}

StorageStats CompressedStorage::stats() const {
  StorageStats stats;
  stats.hot_hits = hot_.hits();
  stats.hot_misses = hot_.misses();
  return stats;
}

std::span<const VertexId> CompressedStorage::Set(
    std::uint64_t i, StorageScratch* scratch) const {
  SOLDIST_DCHECK(i < num_sets_);
  DecodeGapList(encoded_.set_bytes.data(), encoded_.set_offsets[i],
                &scratch->set_);
  return scratch->set_;
}

std::span<const std::uint32_t> CompressedStorage::InvertedAll(
    VertexId v, StorageScratch* scratch) const {
  SOLDIST_DCHECK(v < num_vertices_);
  if (hot_.Get(v, &scratch->ids_)) return scratch->ids_;
  DecodeGapList(encoded_.index_bytes.data(), encoded_.index_offsets[v],
                &scratch->ids_);
  hot_.Put(v, scratch->ids_);
  return scratch->ids_;
}

// ---------------------------------------------------------------------
// MmapSpillStorage
// ---------------------------------------------------------------------

MmapSpillStorage::MmapSpillStorage(VertexId num_vertices,
                                   std::uint64_t num_sets,
                                   std::uint64_t total_entries,
                                   const StorageOptions& options)
    : RrStorage(num_vertices, num_sets, total_entries),
      chunk_bytes_(options.resident_chunk_bytes),
      chunk_budget_(std::max<std::uint64_t>(
          1, options.resident_budget_bytes / options.resident_chunk_bytes)),
      hot_(options.hot_list_bytes) {}

StatusOr<std::shared_ptr<MmapSpillStorage>> MmapSpillStorage::Create(
    EncodedArena&& encoded, VertexId num_vertices, std::uint64_t num_sets,
    std::uint64_t total_entries, const StorageOptions& options) {
  SOLDIST_RETURN_IF_ERROR(options.Validate());
  if (options.spill_dir.empty()) {
    return Status::InvalidArgument("mmap backend requires a spill dir");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.spill_dir, ec);
  if (ec) {
    return Status::IoError("cannot create spill dir '" + options.spill_dir +
                           "': " + ec.message());
  }
  static std::atomic<std::uint64_t> sequence{0};
  std::shared_ptr<MmapSpillStorage> storage(new MmapSpillStorage(
      num_vertices, num_sets, total_entries, options));
  storage->set_offsets_ = std::move(encoded.set_offsets);
  storage->index_offsets_ = std::move(encoded.index_offsets);
  storage->index_base_ = encoded.set_bytes.size();
  storage->path_ = options.spill_dir + "/soldist-spill-" +
                   std::to_string(static_cast<long>(::getpid())) + "-" +
                   std::to_string(sequence.fetch_add(1)) + ".bin";
  // Fault hooks: spill bytes carry no checksum (the mmap serves them
  // raw), so only hard errors are injected here — never torn/short
  // mutilation, which would silently change answers.
  FaultInjector* inject = fault_injector();
  if (inject != nullptr) {
    SOLDIST_RETURN_IF_ERROR(inject->Check(FaultOp::kOpen, storage->path_));
  }
  const int fd =
      ::open(storage->path_.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create spill file '" + storage->path_ +
                           "'");
  }
  storage->fd_ = fd;
  if (inject != nullptr) {
    SOLDIST_RETURN_IF_ERROR(inject->Check(FaultOp::kWrite, storage->path_));
  }
  auto write_all = [fd](const std::uint8_t* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
      const ssize_t w = ::write(fd, data + done, size - done);
      if (w <= 0) return false;
      done += static_cast<std::size_t>(w);
    }
    return true;
  };
  if (!write_all(encoded.set_bytes.data(), encoded.set_bytes.size()) ||
      !write_all(encoded.index_bytes.data(), encoded.index_bytes.size())) {
    return Status::IoError("short write to spill file '" + storage->path_ +
                           "'");
  }
  storage->mapped_bytes_ =
      encoded.set_bytes.size() + encoded.index_bytes.size();
  if (storage->mapped_bytes_ > 0) {
    void* mapped = ::mmap(nullptr, storage->mapped_bytes_, PROT_READ,
                          MAP_SHARED, fd, 0);
    if (mapped == MAP_FAILED) {
      return Status::IoError("mmap failed for spill file '" +
                             storage->path_ + "'");
    }
    storage->mapped_ = static_cast<const std::uint8_t*>(mapped);
  }
  return storage;
}

MmapSpillStorage::~MmapSpillStorage() {
  if (mapped_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(mapped_), mapped_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

std::uint64_t MmapSpillStorage::MemoryBytes() const {
  // Logical footprint: the spilled encoded streams plus the resident
  // offset arrays. This is what the arena would occupy fully loaded.
  return mapped_bytes_ + VectorBytes(set_offsets_) +
         VectorBytes(index_offsets_);
}

std::uint64_t MmapSpillStorage::ResidentBytes() const {
  std::uint64_t resident_chunk_bytes;
  {
    std::lock_guard<std::mutex> lock(chunk_mu_);
    resident_chunk_bytes = chunk_map_.size() * chunk_bytes_;
  }
  return VectorBytes(set_offsets_) + VectorBytes(index_offsets_) +
         std::min(resident_chunk_bytes, mapped_bytes_) + hot_.bytes();
}

StorageStats MmapSpillStorage::stats() const {
  StorageStats stats;
  stats.hot_hits = hot_.hits();
  stats.hot_misses = hot_.misses();
  std::lock_guard<std::mutex> lock(chunk_mu_);
  stats.chunk_loads = chunk_loads_;
  stats.chunk_evictions = chunk_evictions_;
  return stats;
}

const std::uint8_t* MmapSpillStorage::TouchRange(std::uint64_t begin,
                                                 std::uint64_t end) const {
  SOLDIST_DCHECK(end <= mapped_bytes_);
  if (end <= begin) return mapped_ + begin;
  const std::uint64_t first = begin / chunk_bytes_;
  const std::uint64_t last = (end - 1) / chunk_bytes_;
  std::lock_guard<std::mutex> lock(chunk_mu_);
  for (std::uint64_t c = first; c <= last; ++c) {
    auto it = chunk_map_.find(c);
    if (it != chunk_map_.end()) {
      chunk_lru_.splice(chunk_lru_.begin(), chunk_lru_, it->second);
      continue;
    }
    chunk_lru_.push_front(c);
    chunk_map_.emplace(c, chunk_lru_.begin());
    ++chunk_loads_;
    // Chunk fault-in is the mmap backend's read boundary; it cannot
    // surface a Status (the kernel serves the page either way), so the
    // injector contributes latency only — enough to drive deadline and
    // degraded-answer paths under --fault-spec slow-read-us=N.
    if (FaultInjector* inject = fault_injector()) {
      inject->DelaySlowRead();
    }
  }
  while (chunk_map_.size() > chunk_budget_) {
    const std::uint64_t victim = chunk_lru_.back();
    // Never evict a chunk of the range being served (it sits at the LRU
    // front, so this only triggers when the touch itself overflows the
    // budget).
    if (victim >= first && victim <= last) break;
    chunk_lru_.pop_back();
    chunk_map_.erase(victim);
    ++chunk_evictions_;
    const std::uint64_t off = victim * chunk_bytes_;
    const std::uint64_t len = std::min(chunk_bytes_, mapped_bytes_ - off);
    ::madvise(const_cast<std::uint8_t*>(mapped_) + off,
              static_cast<std::size_t>(len), MADV_DONTNEED);
  }
  return mapped_ + begin;
}

std::span<const VertexId> MmapSpillStorage::Set(
    std::uint64_t i, StorageScratch* scratch) const {
  SOLDIST_DCHECK(i < num_sets_);
  const std::uint8_t* data = TouchRange(set_offsets_[i], set_offsets_[i + 1]);
  DecodeGapList(data, 0, &scratch->set_);
  return scratch->set_;
}

std::span<const std::uint32_t> MmapSpillStorage::InvertedAll(
    VertexId v, StorageScratch* scratch) const {
  SOLDIST_DCHECK(v < num_vertices_);
  if (hot_.Get(v, &scratch->ids_)) return scratch->ids_;
  const std::uint8_t* data = TouchRange(index_base_ + index_offsets_[v],
                                        index_base_ + index_offsets_[v + 1]);
  DecodeGapList(data, 0, &scratch->ids_);
  hot_.Put(v, scratch->ids_);
  return scratch->ids_;
}

// ---------------------------------------------------------------------
// MakeRrStorage
// ---------------------------------------------------------------------

StatusOr<std::shared_ptr<const RrStorage>> MakeRrStorage(
    RrFlatPayload&& payload, VertexId num_vertices,
    const StorageOptions& options) {
  SOLDIST_RETURN_IF_ERROR(options.Validate());
  const std::uint64_t num_sets =
      static_cast<std::uint64_t>(payload.set_offsets.size()) - 1;
  const std::uint64_t total_entries =
      static_cast<std::uint64_t>(payload.flat.size());
  switch (options.backend) {
    case ArenaBackend::kFlat:
      return std::shared_ptr<const RrStorage>(
          std::make_shared<FlatStorage>(std::move(payload), num_vertices));
    case ArenaBackend::kCompressed:
      return std::shared_ptr<const RrStorage>(
          std::make_shared<CompressedStorage>(
              EncodeRrPayload(payload, num_vertices), num_vertices, num_sets,
              total_entries, options.hot_list_bytes));
    case ArenaBackend::kMmap: {
      StatusOr<std::shared_ptr<MmapSpillStorage>> spill =
          MmapSpillStorage::Create(EncodeRrPayload(payload, num_vertices),
                                   num_vertices, num_sets, total_entries,
                                   options);
      if (!spill.ok()) return spill.status();
      return std::shared_ptr<const RrStorage>(std::move(spill).value());
    }
  }
  return Status::Internal("unhandled arena backend");
}

}  // namespace store
}  // namespace soldist
