// Deterministic, seed-driven IO fault injection for the store/ layer.
//
// Every RrStorage / arena_io IO boundary (file open, payload read/write,
// fsync, mmap chunk fault-in) consults the process-global FaultInjector
// before touching the real filesystem. With no injector installed the
// hooks are a single relaxed atomic load — the production path pays one
// branch. With an injector installed (`--fault-spec` on the tools, the
// SOLDIST_FAULT_SPEC environment variable for test binaries), every
// corruption/timeout path in store/ becomes reproducibly reachable in
// ctest and CI instead of only by real disk failures.
//
// Fault-spec grammar: comma-separated `key=value` / bare-flag tokens —
//
//   error-rate=0.1      inject Status::IoError on ~10% of ops (seeded draw)
//   error-every=N       deterministically fail every Nth op (1-based)
//   seed=S              stream seed for the error-rate draw (default 1)
//   torn-write          write ops persist only a prefix of their bytes
//   short-read          read ops return truncated data
//   slow-read-us=N      add N microseconds of latency to read/chunk ops
//   crash-at=B:N        hard-kill the process (_exit, no unwinding, no
//                       buffer flush — the moral equivalent of SIGKILL
//                       mid-syscall) at the Nth occurrence (1-based) of
//                       boundary B, where B is one of open | read |
//                       write | sync | mmap-chunk | rename
//
// e.g. "error-rate=0.1,seed=7" or "torn-write,error-every=3" or
// "crash-at=rename:1". Decisions are a pure function of (seed,
// per-injector op counter), so a single-threaded run replays exactly;
// concurrent runs draw from the same decision sequence in arrival
// order. Crash points count occurrences PER BOUNDARY (the 2nd fsync is
// crash-at=sync:2 regardless of how many writes preceded it), which
// keeps crash matrices stable when unrelated IO is added.

#ifndef SOLDIST_STORE_FAULT_INJECTION_H_
#define SOLDIST_STORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace soldist {
namespace store {

/// IO boundary classes a fault can target.
enum class FaultOp {
  kOpen,       ///< opening a payload/manifest/spill file
  kRead,       ///< reading payload bytes
  kWrite,      ///< writing payload bytes
  kSync,       ///< fsync of a written payload
  kMmapChunk,  ///< faulting in an mmap-spill chunk
  kRename,     ///< the atomic-rename commit of a tmp file
};

/// Number of FaultOp values (for per-boundary counter arrays).
inline constexpr int kNumFaultOps = 6;

/// Exit code of a process killed by an injected crash point. Fork-based
/// crash harnesses treat this — and only this — child exit status as an
/// intentional crash; any other abnormal exit is a real bug.
inline constexpr int kCrashExitCode = 42;

const char* FaultOpName(FaultOp op);

/// Reverse of FaultOpName: parses "open" / "read" / "write" / "sync" /
/// "mmap-chunk" / "rename". Returns false on unknown names.
bool ParseFaultOpName(const std::string& name, FaultOp* op);

/// Parsed --fault-spec (see the grammar above). Default-constructed =
/// no faults.
struct FaultSpec {
  double error_rate = 0.0;
  std::uint64_t error_every = 0;  ///< 0 = off; N = every Nth op fails
  std::uint64_t seed = 1;
  bool torn_write = false;
  bool short_read = false;
  std::uint64_t slow_read_us = 0;
  FaultOp crash_at_op = FaultOp::kWrite;  ///< boundary of the crash point
  std::uint64_t crash_at_n = 0;  ///< 0 = off; N = die at Nth occurrence

  bool Enabled() const {
    return error_rate > 0.0 || error_every > 0 || torn_write || short_read ||
           slow_read_us > 0 || crash_at_n > 0;
  }

  /// Parses the grammar; rejects unknown keys, bad values, and
  /// error-rate outside [0, 1].
  static StatusOr<FaultSpec> Parse(const std::string& text);

  /// Canonical re-rendering of the spec (round-trips through Parse).
  std::string ToString() const;
};

/// Monotone counters of what the injector actually did.
struct FaultCounterSnapshot {
  std::uint64_t ops = 0;
  std::uint64_t injected_errors = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t short_reads = 0;
  std::uint64_t delays = 0;
  /// Per-boundary occurrence counts (indexed by FaultOp), maintained
  /// only while a crash point is armed — the crash decision needs them,
  /// and they let a parent harness see how far a child got.
  std::uint64_t boundary_ops[kNumFaultOps] = {0, 0, 0, 0, 0, 0};
};

/// \brief Seed-driven fault decision engine. Thread-safe; all state is
/// atomic. One instance is installed process-globally (see
/// fault_injector() below) because the IO boundaries it hooks sit below
/// any per-session object.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }

  /// Draws the next fault decision for `op`. Returns Status::IoError
  /// ("injected fault ...") when this op should fail, OK otherwise.
  /// Also applies the slow-read delay to read-class ops. When a crash
  /// point is armed and this is its Nth occurrence of the boundary, the
  /// process dies here with _exit(kCrashExitCode) — the op it gates
  /// never executes, exactly like a power cut before the syscall.
  Status Check(FaultOp op, const std::string& what);

  /// Torn write: the number of bytes the caller should actually persist
  /// (a strict non-empty prefix when enabled and size > 1). The caller
  /// then reports success — the checksum/size guards on the read side
  /// are what must catch the damage.
  std::size_t MutilateWriteSize(std::size_t size);

  /// Short read: the number of bytes the caller should pretend were
  /// read (a strict prefix when enabled and size > 1).
  std::size_t MutilateReadSize(std::size_t size);

  /// Applies ONLY the slow-read latency (no error draw): for boundaries
  /// that cannot surface a Status (mmap chunk fault-in returns a
  /// pointer) but should still exercise timeout/deadline paths.
  void DelaySlowRead();

  FaultCounterSnapshot counters() const {
    FaultCounterSnapshot snap;
    snap.ops = ops_.load(std::memory_order_relaxed);
    snap.injected_errors = injected_errors_.load(std::memory_order_relaxed);
    snap.torn_writes = torn_writes_.load(std::memory_order_relaxed);
    snap.short_reads = short_reads_.load(std::memory_order_relaxed);
    snap.delays = delays_.load(std::memory_order_relaxed);
    for (int i = 0; i < kNumFaultOps; ++i) {
      snap.boundary_ops[i] = boundary_ops_[i].load(std::memory_order_relaxed);
    }
    return snap;
  }

 private:
  /// Dies at the crash point if `op` is its Nth boundary occurrence.
  void MaybeCrash(FaultOp op);

  FaultSpec spec_;
  std::atomic<std::uint64_t> op_counter_{0};
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> injected_errors_{0};
  std::atomic<std::uint64_t> torn_writes_{0};
  std::atomic<std::uint64_t> short_reads_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> boundary_ops_[kNumFaultOps] = {};
};

/// The installed injector, or null when fault injection is off. On the
/// very first call the SOLDIST_FAULT_SPEC environment variable is
/// consulted (and installed if set and valid), so test binaries run
/// under CI fault presets without flag plumbing.
FaultInjector* fault_injector();

/// Parses `spec_text` and installs it process-globally (replacing any
/// previous injector). An empty spec uninstalls. NOT thread-safe
/// against concurrent IO — install before serving starts (tools do this
/// during flag handling; tests between cases).
Status InstallFaultInjector(const std::string& spec_text);

/// Removes the installed injector (idempotent).
void UninstallFaultInjector();

}  // namespace store
}  // namespace soldist

#endif  // SOLDIST_STORE_FAULT_INJECTION_H_
