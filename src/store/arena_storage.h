// Pluggable storage backends for RR-set arenas (ISSUE 8 / ROADMAP
// "out-of-core arenas").
//
// An RrStorage owns the arena payload — the flat set array, the per-set
// offsets and the vertex-major inverted index — behind a uniform
// decode-into-scratch query API, so the arena's prefix-closed sampling
// contract is completely independent of how the bytes are held:
//
//   FlatStorage        today's word-packed layout, zero behavior change;
//                      queries return zero-copy spans into the payload.
//   CompressedStorage  the delta+varint encoding of CompressedRrCollection
//                      promoted to a real backend: sets are sorted, gap
//                      coded and LEB128 packed (~1-2 B/entry vs 8), the
//                      inverted index likewise; per-vertex lists decode on
//                      demand through a byte-budgeted hot-list LRU.
//   MmapSpillStorage   the same encoding spilled to a file under
//                      StorageOptions::spill_dir and mapped read-only;
//                      chunk-granular residency tracking with LRU
//                      madvise(MADV_DONTNEED) eviction keeps ResidentBytes
//                      bounded by resident_budget_bytes regardless of the
//                      logical MemoryBytes — the enabling layer for
//                      θ=2^24 grids and beyond-RAM networks.
//
// Two invariants every backend keeps:
//   * Inverted lists decode to EXACTLY the flat index (ascending set ids),
//     so prefix cuts, cover counts, CELF seeds and all query answers are
//     identical across backends (ctest arena_store_test proves it through
//     Solve/TopK/Spread).
//   * Sets decode with the same MEMBERSHIP as the flat layout; the
//     encoded backends return them sorted ascending (gap coding needs
//     monotone entries) while flat preserves traversal order. No query
//     path depends on intra-set order — coverage marks and cover-count
//     decrements are order-free — and the raw zero-copy accessors remain
//     flat-only.
//
// ResidentBytes() vs MemoryBytes(): MemoryBytes is the logical payload
// footprint (what a cache would charge if everything were in RAM);
// ResidentBytes is what actually occupies RAM right now (flat: equal;
// compressed: payload + hot-list cache; mmap: offsets + resident chunks +
// hot-list cache). serve::ArenaCache budgets against ResidentBytes so a
// spilled arena does not evict live flat arenas prematurely.

#ifndef SOLDIST_STORE_ARENA_STORAGE_H_
#define SOLDIST_STORE_ARENA_STORAGE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace soldist {
namespace store {

/// \brief Which backend holds an arena's payload.
enum class ArenaBackend { kFlat, kCompressed, kMmap };

const char* ArenaBackendName(ArenaBackend backend);

/// Parses "flat" | "compressed" | "mmap" (the --arena-backend values).
StatusOr<ArenaBackend> ParseArenaBackend(const std::string& name);

/// \brief Backend selection plus the residency knobs of the out-of-core
/// backends. Copyable value type carried through SessionOptions.
struct StorageOptions {
  ArenaBackend backend = ArenaBackend::kFlat;

  /// Directory for spill files; REQUIRED for kMmap (Validate rejects an
  /// empty spill_dir rather than silently writing somewhere implicit).
  std::string spill_dir;

  /// Byte budget of the decoded per-vertex hot-list LRU shared by the
  /// compressed and mmap backends.
  std::uint64_t hot_list_bytes = 4ull << 20;

  /// Residency-tracking granule of the mmap backend: byte ranges are
  /// touched, accounted and evicted in chunks of this size.
  std::uint64_t resident_chunk_bytes = 256ull << 10;

  /// Mapped-chunk budget of the mmap backend; chunks above it are evicted
  /// LRU via madvise(MADV_DONTNEED).
  std::uint64_t resident_budget_bytes = 8ull << 20;

  Status Validate() const;
};

/// \brief Monotone query-path counters a backend exposes (REPL `stats`,
/// bench_arena_store). Flat reports all zeros.
struct StorageStats {
  std::uint64_t hot_hits = 0;        // inverted lists served from the LRU
  std::uint64_t hot_misses = 0;      // inverted lists decoded from bytes
  std::uint64_t chunk_loads = 0;     // mmap chunks faulted resident
  std::uint64_t chunk_evictions = 0; // mmap chunks madvise'd away
};

/// \brief Caller-owned decode buffers. The encoded backends decode into
/// the scratch and return spans over it, so one scratch per thread makes
/// every backend safe for concurrent const queries — the same discipline
/// as serve::QueryService's per-thread QueryScratch. A span returned
/// from Set/InvertedAll is valid only until the NEXT call on the same
/// scratch. FlatStorage ignores the scratch entirely (zero-copy spans
/// into the payload).
class StorageScratch {
 public:
  StorageScratch() = default;
  StorageScratch(const StorageScratch&) = delete;
  StorageScratch& operator=(const StorageScratch&) = delete;

 private:
  friend class CompressedStorage;
  friend class MmapSpillStorage;
  std::vector<VertexId> set_;
  std::vector<std::uint32_t> ids_;
};

/// \brief Today's word-packed arena layout (see sim/rr_arena.h): one flat
/// vertex array in set order, uint64 per-set offsets, and the ascending
/// vertex-major inverted index with uint32 ids and offsets.
struct RrFlatPayload {
  std::vector<VertexId> flat;
  std::vector<std::uint64_t> set_offsets;    // num_sets + 1
  std::vector<std::uint32_t> index_ids;      // ascending per vertex
  std::vector<std::uint32_t> index_offsets;  // num_vertices + 1
};

/// \brief Abstract immutable RR payload store. All queries are const and
/// thread-safe given one StorageScratch per thread.
class RrStorage {
 public:
  virtual ~RrStorage() = default;

  virtual ArenaBackend backend() const = 0;

  /// Logical payload bytes (offsets + stored set/index bytes).
  virtual std::uint64_t MemoryBytes() const = 0;

  /// Bytes actually occupying RAM right now; <= or >= MemoryBytes only by
  /// cache overhead (see file header). Flat: == MemoryBytes.
  virtual std::uint64_t ResidentBytes() const { return MemoryBytes(); }

  virtual StorageStats stats() const { return {}; }

  /// Members of set i. Flat: traversal order; encoded: sorted ascending.
  virtual std::span<const VertexId> Set(std::uint64_t i,
                                        StorageScratch* scratch) const = 0;

  /// Ascending ids of all sets containing v — identical across backends.
  virtual std::span<const std::uint32_t> InvertedAll(
      VertexId v, StorageScratch* scratch) const = 0;

  /// Non-null iff the raw flat arrays are resident (zero-copy fast path).
  virtual const RrFlatPayload* flat_payload() const { return nullptr; }

  VertexId num_vertices() const { return num_vertices_; }
  std::uint64_t num_sets() const { return num_sets_; }
  std::uint64_t total_entries() const { return total_entries_; }

 protected:
  RrStorage(VertexId num_vertices, std::uint64_t num_sets,
            std::uint64_t total_entries)
      : num_vertices_(num_vertices),
        num_sets_(num_sets),
        total_entries_(total_entries) {}

  VertexId num_vertices_;
  std::uint64_t num_sets_;
  std::uint64_t total_entries_;
};

/// \brief Zero-copy backend over the uncompressed payload.
class FlatStorage final : public RrStorage {
 public:
  FlatStorage(RrFlatPayload&& payload, VertexId num_vertices);

  ArenaBackend backend() const override { return ArenaBackend::kFlat; }
  std::uint64_t MemoryBytes() const override;
  std::span<const VertexId> Set(std::uint64_t i,
                                StorageScratch* scratch) const override;
  std::span<const std::uint32_t> InvertedAll(
      VertexId v, StorageScratch* scratch) const override;
  const RrFlatPayload* flat_payload() const override { return &payload_; }

 private:
  RrFlatPayload payload_;
};

/// \brief The shared delta+varint encoding of a flat payload: each set is
/// sorted and gap coded with a count prefix; each vertex's inverted list
/// is gap coded the same way (already ascending, so decode reproduces the
/// flat index byte-for-byte). Built once by EncodeRrPayload, then either
/// kept in RAM (CompressedStorage) or spilled (MmapSpillStorage).
struct EncodedArena {
  std::vector<std::uint8_t> set_bytes;
  std::vector<std::uint64_t> set_offsets;    // num_sets + 1, into set_bytes
  std::vector<std::uint8_t> index_bytes;
  std::vector<std::uint64_t> index_offsets;  // num_vertices + 1
};

EncodedArena EncodeRrPayload(const RrFlatPayload& payload,
                             VertexId num_vertices);

/// \brief Byte-budgeted LRU of decoded per-vertex inverted lists, shared
/// by the encoded backends. Thread-safe; Get copies the hit into the
/// caller's buffer so eviction never invalidates a served span.
class HotListCache {
 public:
  explicit HotListCache(std::uint64_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  /// On hit copies v's list into *out and returns true.
  bool Get(VertexId v, std::vector<std::uint32_t>* out) const;

  /// Admits v's decoded list (copy), evicting LRU entries over budget.
  void Put(VertexId v, std::span<const std::uint32_t> ids) const;

  std::uint64_t bytes() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  struct Entry {
    VertexId vertex;
    std::vector<std::uint32_t> ids;
  };
  // Logically const from the backend's point of view (a query-path
  // cache), hence the mutable members behind the mutex.
  mutable std::mutex mu_;
  mutable std::list<Entry> lru_;  // front = most recent
  mutable std::unordered_map<VertexId, std::list<Entry>::iterator> map_;
  mutable std::uint64_t bytes_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t budget_bytes_;
};

/// \brief In-RAM encoded backend: ~4-8x smaller than flat on the paper's
/// networks, every query decodes on demand (sets per call, inverted lists
/// through the hot-list LRU).
class CompressedStorage final : public RrStorage {
 public:
  CompressedStorage(EncodedArena&& encoded, VertexId num_vertices,
                    std::uint64_t num_sets, std::uint64_t total_entries,
                    std::uint64_t hot_list_bytes);

  ArenaBackend backend() const override {
    return ArenaBackend::kCompressed;
  }
  std::uint64_t MemoryBytes() const override;
  std::uint64_t ResidentBytes() const override;
  StorageStats stats() const override;
  std::span<const VertexId> Set(std::uint64_t i,
                                StorageScratch* scratch) const override;
  std::span<const std::uint32_t> InvertedAll(
      VertexId v, StorageScratch* scratch) const override;

 private:
  EncodedArena encoded_;
  HotListCache hot_;
};

/// \brief Spilled encoded backend: the set/index byte streams live in a
/// read-only mapping of a spill file (removed on destruction); only the
/// offset arrays stay unconditionally resident. Residency is tracked in
/// chunks of resident_chunk_bytes — touching a byte range faults its
/// chunks in (chunk_loads), and chunks beyond resident_budget_bytes are
/// evicted LRU via madvise(MADV_DONTNEED) (chunk_evictions).
class MmapSpillStorage final : public RrStorage {
 public:
  /// Writes the encoded payload to a fresh spill file under
  /// options.spill_dir and maps it. IO failures return Status.
  static StatusOr<std::shared_ptr<MmapSpillStorage>> Create(
      EncodedArena&& encoded, VertexId num_vertices, std::uint64_t num_sets,
      std::uint64_t total_entries, const StorageOptions& options);

  ~MmapSpillStorage() override;
  MmapSpillStorage(const MmapSpillStorage&) = delete;
  MmapSpillStorage& operator=(const MmapSpillStorage&) = delete;

  ArenaBackend backend() const override { return ArenaBackend::kMmap; }
  std::uint64_t MemoryBytes() const override;
  std::uint64_t ResidentBytes() const override;
  StorageStats stats() const override;
  std::span<const VertexId> Set(std::uint64_t i,
                                StorageScratch* scratch) const override;
  std::span<const std::uint32_t> InvertedAll(
      VertexId v, StorageScratch* scratch) const override;

  const std::string& spill_path() const { return path_; }

 private:
  MmapSpillStorage(VertexId num_vertices, std::uint64_t num_sets,
                   std::uint64_t total_entries,
                   const StorageOptions& options);

  /// Marks the chunks covering [begin, end) resident (LRU-refreshing),
  /// evicting over budget. Returns a pointer to mapped byte `begin`.
  const std::uint8_t* TouchRange(std::uint64_t begin,
                                 std::uint64_t end) const;

  std::vector<std::uint64_t> set_offsets_;    // resident, into mapped bytes
  std::vector<std::uint64_t> index_offsets_;  // resident
  std::uint64_t index_base_ = 0;  // index_bytes start inside the mapping
  std::string path_;
  int fd_ = -1;
  const std::uint8_t* mapped_ = nullptr;
  std::uint64_t mapped_bytes_ = 0;
  std::uint64_t chunk_bytes_;
  std::uint64_t chunk_budget_;  // max resident chunks

  mutable std::mutex chunk_mu_;
  mutable std::list<std::uint64_t> chunk_lru_;  // front = most recent
  mutable std::unordered_map<std::uint64_t,
                             std::list<std::uint64_t>::iterator>
      chunk_map_;
  mutable std::uint64_t chunk_loads_ = 0;
  mutable std::uint64_t chunk_evictions_ = 0;

  HotListCache hot_;
};

/// \brief Builds the storage `options.backend` asks for from a flat
/// payload (encoding it for the non-flat backends).
StatusOr<std::shared_ptr<const RrStorage>> MakeRrStorage(
    RrFlatPayload&& payload, VertexId num_vertices,
    const StorageOptions& options);

}  // namespace store
}  // namespace soldist

#endif  // SOLDIST_STORE_ARENA_STORAGE_H_
