#include "store/recovery.h"

#include <algorithm>
#include <filesystem>

#include "store/arena_io.h"
#include "util/json.h"
#include "util/logging.h"

namespace soldist {
namespace store {
namespace {

namespace fs = std::filesystem;

constexpr char kQuarantineDirName[] = "quarantine";

bool IsTmpFile(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
}

/// Children of `dir`, sorted by path so sweep order (and therefore the
/// actions log) is deterministic across filesystems.
std::vector<fs::path> SortedChildren(const fs::path& dir, std::error_code* ec) {
  std::vector<fs::path> children;
  fs::directory_iterator it(dir, *ec);
  if (*ec) return children;
  for (const fs::directory_entry& entry : it) children.push_back(entry.path());
  std::sort(children.begin(), children.end());
  return children;
}

void Act(RecoveryReport* report, const std::string& line) {
  report->actions.push_back(line);
}

void SweepError(RecoveryReport* report, const std::string& what,
                const std::error_code& ec) {
  ++report->sweep_errors;
  Act(report, "error: " + what + " (" + ec.message() + ")");
}

/// Deletes *.tmp files directly inside `dir`. Returns whether any
/// non-tmp content remains.
bool CleanTmpFiles(const fs::path& dir, RecoveryReport* report) {
  std::error_code ec;
  bool remains = false;
  for (const fs::path& child : SortedChildren(dir, &ec)) {
    if (IsTmpFile(child)) {
      std::error_code rm;
      fs::remove(child, rm);
      if (rm) {
        SweepError(report, "deleting '" + child.string() + "'", rm);
        remains = true;
      } else {
        ++report->cleaned_tmp_files;
        Act(report, "deleted: " + child.string() + " (uncommitted tmp)");
      }
    } else {
      remains = true;
    }
  }
  if (ec) SweepError(report, "listing '" + dir.string() + "'", ec);
  return remains;
}

void SweepEntryDir(const fs::path& root, const fs::path& dir,
                   RecoveryReport* report) {
  ++report->scanned_entries;
  const bool remains = CleanTmpFiles(dir, report);
  std::error_code ec;
  if (!remains) {
    fs::remove(dir, ec);
    if (ec) {
      SweepError(report, "removing '" + dir.string() + "'", ec);
    } else {
      ++report->removed_empty_dirs;
      Act(report, "removed: " + dir.string() + " (empty after tmp cleanup)");
    }
    return;
  }
  if (!fs::exists(dir / "manifest.txt", ec)) {
    // No committed manifest: the save never committed as a whole, so
    // nothing in here can be a valid entry — but only delete shapes the
    // protocol explains (a committed payload). Anything else is not
    // ours to destroy.
    if (fs::exists(dir / "payload.bin", ec)) {
      std::error_code rm;
      fs::remove_all(dir, rm);
      if (rm) {
        SweepError(report, "removing '" + dir.string() + "'", rm);
      } else {
        ++report->orphaned_payloads;
        Act(report,
            "deleted: " + dir.string() + " (payload without manifest)");
      }
    } else {
      Act(report, "skipped: " + dir.string() +
                      " (no manifest, no payload — not an arena entry)");
    }
    return;
  }
  const Status verified = VerifyArena(dir.string());
  if (verified.ok()) {
    ++report->healthy_entries;
    return;
  }
  std::string moved_to;
  const Status moved = QuarantineEntry(root.string(), dir.string(), &moved_to);
  if (!moved.ok()) {
    ++report->sweep_errors;
    Act(report, "error: quarantining '" + dir.string() +
                    "' failed (" + moved.ToString() + ")");
    return;
  }
  ++report->quarantined_entries;
  Act(report, "quarantined: " + dir.string() + " -> " + moved_to + " (" +
                  verified.ToString() + ")");
}

}  // namespace

std::string RecoveryReport::ToJson() const {
  JsonObject obj;
  obj.UInt("scanned_entries", scanned_entries)
      .UInt("healthy_entries", healthy_entries)
      .UInt("cleaned_tmp_files", cleaned_tmp_files)
      .UInt("orphaned_payloads", orphaned_payloads)
      .UInt("quarantined_entries", quarantined_entries)
      .UInt("removed_empty_dirs", removed_empty_dirs)
      .UInt("sweep_errors", sweep_errors)
      .Bool("clean", Clean());
  std::string array = "[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) array += ",";
    array += JsonQuote(actions[i]);
  }
  array += "]";
  obj.Raw("actions", array);
  return obj.ToString();
}

Status QuarantineEntry(const std::string& root, const std::string& entry_dir,
                       std::string* moved_to) {
  const fs::path quarantine = fs::path(root) / kQuarantineDirName;
  std::error_code ec;
  fs::create_directories(quarantine, ec);
  if (ec) {
    return Status::IoError("cannot create '" + quarantine.string() +
                           "': " + ec.message());
  }
  const std::string base = fs::path(entry_dir).filename().string();
  fs::path target = quarantine / base;
  for (int suffix = 1; fs::exists(target, ec); ++suffix) {
    target = quarantine / (base + "." + std::to_string(suffix));
  }
  fs::rename(entry_dir, target, ec);
  if (ec) {
    return Status::IoError("cannot move '" + entry_dir + "' to '" +
                           target.string() + "': " + ec.message());
  }
  if (moved_to != nullptr) *moved_to = target.string();
  return Status::OK();
}

StatusOr<RecoveryReport> RecoverArenaDir(const std::string& root) {
  RecoveryReport report;
  std::error_code ec;
  const fs::path root_path(root);
  if (!fs::exists(root_path, ec)) return report;  // nothing ever saved
  if (!fs::is_directory(root_path, ec)) {
    return Status::InvalidArgument("arena dir '" + root +
                                   "' is not a directory");
  }
  for (const fs::path& child : SortedChildren(root_path, &ec)) {
    std::error_code type_ec;
    if (fs::is_directory(child, type_ec)) {
      if (child.filename().string() == kQuarantineDirName) continue;
      SweepEntryDir(root_path, child, &report);
    } else if (IsTmpFile(child)) {
      std::error_code rm;
      fs::remove(child, rm);
      if (rm) {
        SweepError(&report, "deleting '" + child.string() + "'", rm);
      } else {
        ++report.cleaned_tmp_files;
        Act(&report, "deleted: " + child.string() + " (uncommitted tmp)");
      }
    }
    // Other stray files at the root (e.g. a user's notes) are ignored.
  }
  if (ec) SweepError(&report, "listing '" + root + "'", ec);
  if (!report.Clean()) {
    SOLDIST_LOG(Warning) << "arena recovery swept '" << root << "': "
                         << report.ToJson();
  }
  return report;
}

}  // namespace store
}  // namespace soldist
