#include "store/arena_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "store/fault_injection.h"
#include "util/logging.h"

namespace soldist {
namespace store {
namespace {

// "SOLDARNA" as a native u64: written in host byte order, so a file
// produced on an opposite-endian machine reads back as a different value
// and the load fails cleanly instead of deserializing garbage.
constexpr std::uint64_t kPayloadMagic = 0x534F4C4441524E41ull;
constexpr std::uint32_t kKindRr = 0;
constexpr std::uint32_t kKindSnapshot = 1;

constexpr char kManifestFile[] = "/manifest.txt";
constexpr char kPayloadFile[] = "/payload.bin";

std::uint64_t Fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t hash = 0xcbf29ce484222325ull) {
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// fsyncs the directory containing `path` so a just-committed rename
/// survives a crash (the rename updates the directory entry; without
/// this the entry itself can be lost even though the inode is durable).
Status SyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open dir '" + dir +
                           "' for fsync: " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fsync of dir '" + dir + "' failed: " + err);
  }
  ::close(fd);
  return Status::OK();
}

/// Atomically publishes `tmp` as `path` (the COMMIT POINT of every
/// store/ file write) and makes the directory entry durable. A crash
/// before the rename leaves only `*.tmp` debris; after it, the complete
/// file — never a half-written file under its final name.
Status CommitFile(const std::string& tmp, const std::string& path) {
  FaultInjector* inject = fault_injector();
  if (inject != nullptr) {
    SOLDIST_RETURN_IF_ERROR(inject->Check(FaultOp::kRename, path));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename '" + tmp + "' -> '" + path +
                           "' failed: " + std::strerror(errno));
  }
  return SyncParentDir(path);
}

/// Durably writes `size` bytes through the tmp + atomic-rename protocol:
/// open/write/fsync `path + ".tmp"` (each an injectable fault boundary;
/// a torn write persists a prefix of the TMP file and still commits it —
/// the read-side checksum guards are what must catch the damage), then
/// CommitFile renames it over `path`.
Status WriteFileDurably(const std::string& path, const std::uint8_t* data,
                        std::size_t size) {
  const std::string tmp = path + ".tmp";
  FaultInjector* inject = fault_injector();
  if (inject != nullptr) {
    SOLDIST_RETURN_IF_ERROR(inject->Check(FaultOp::kOpen, tmp));
  }
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open '" + tmp + "' for writing: " +
                           std::strerror(errno));
  }
  std::size_t write_size = size;
  if (inject != nullptr) {
    Status faulted = inject->Check(FaultOp::kWrite, tmp);
    if (!faulted.ok()) {
      ::close(fd);
      return faulted;
    }
    write_size = inject->MutilateWriteSize(write_size);
  }
  std::size_t written = 0;
  while (written < write_size) {
    const ssize_t n = ::write(fd, data + written, write_size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("write to '" + tmp + "' failed: " + err);
    }
    written += static_cast<std::size_t>(n);
  }
  if (inject != nullptr) {
    Status faulted = inject->Check(FaultOp::kSync, tmp);
    if (!faulted.ok()) {
      ::close(fd);
      return faulted;
    }
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fsync of '" + tmp + "' failed: " + err);
  }
  if (::close(fd) != 0) {
    return Status::IoError("close of '" + tmp +
                           "' failed: " + std::strerror(errno));
  }
  return CommitFile(tmp, path);
}

/// Append-only payload writer: accumulates the byte stream in memory,
/// then flushes it with its checksum in one pass. Arenas at the recorded
/// bench scales are tens of MB, so the staging buffer is acceptable; a
/// streaming writer can replace this without a format change.
class PayloadWriter {
 public:
  void PutU32(std::uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(std::uint64_t v) { PutRaw(&v, sizeof(v)); }

  template <typename T>
  void PutVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!v.empty()) PutRaw(v.data(), v.size() * sizeof(T));
  }

  void PutCounters(const TraversalCounters& c) {
    PutU64(c.vertices);
    PutU64(c.edges);
    PutU64(c.sample_vertices);
    PutU64(c.sample_edges);
  }

  /// Durable tmp+rename write with an fsync BEFORE the caller writes
  /// the manifest: the "payload before manifest" crash ordering is only
  /// real once the payload bytes are durable (and committed under their
  /// final name) when the manifest names them. A torn write persists
  /// only a prefix but still REPORTS success (bytes/checksum below
  /// describe the full buffer): the read-side size/checksum guards are
  /// what must catch the damage.
  Status Flush(const std::string& path, std::uint64_t* bytes,
               std::uint64_t* checksum) const {
    SOLDIST_RETURN_IF_ERROR(
        WriteFileDurably(path, buffer_.data(), buffer_.size()));
    *bytes = buffer_.size();
    *checksum = Fnv1a(buffer_.data(), buffer_.size());
    return Status::OK();
  }

 private:
  void PutRaw(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }

  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked payload reader: every Get returns false once the
/// cursor would run past the end, so a truncated file surfaces as a
/// Status from the caller, never an out-of-bounds read.
class PayloadReader {
 public:
  explicit PayloadReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  bool GetU32(std::uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(std::uint64_t* v) { return GetRaw(v, sizeof(*v)); }

  template <typename T>
  bool GetVector(std::uint64_t count, std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Reject counts the remaining bytes cannot possibly hold BEFORE
    // resizing, so a corrupt length cannot trigger a huge allocation.
    if (count > (bytes_.size() - pos_) / sizeof(T)) return false;
    v->resize(count);
    return count == 0 || GetRaw(v->data(), count * sizeof(T));
  }

  bool GetCounters(TraversalCounters* c) {
    return GetU64(&c->vertices) && GetU64(&c->edges) &&
           GetU64(&c->sample_vertices) && GetU64(&c->sample_edges);
  }

  bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  bool GetRaw(void* out, std::size_t size) {
    if (size > bytes_.size() - pos_) return false;
    std::memcpy(out, bytes_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

Status WriteManifest(const ArenaManifest& manifest, const std::string& dir) {
  const std::string path = dir + kManifestFile;
  std::string text;
  text += "format_version=" + std::to_string(manifest.version) + "\n";
  text += "kind=" + manifest.kind + "\n";
  text += "workload=" + manifest.workload + "\n";
  text += "seed=" + std::to_string(manifest.seed) + "\n";
  text += "stream=" + manifest.stream + "\n";
  text += "capacity=" + std::to_string(manifest.capacity) + "\n";
  text += "num_vertices=" + std::to_string(manifest.num_vertices) + "\n";
  text += "payload_bytes=" + std::to_string(manifest.payload_bytes) + "\n";
  text += "checksum=" + std::to_string(manifest.checksum) + "\n";
  // Same tmp+rename protocol as the payload: the manifest rename is the
  // commit point of the WHOLE save (a directory becomes a loadable hit
  // at exactly this instant and never before).
  return WriteFileDurably(path,
                          reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size());
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

/// Checks the identity fields of a read manifest against the request.
/// Capacity is a >= check: a bigger saved arena serves any smaller τ as
/// a byte-identical prefix.
Status MatchManifest(const ArenaManifest& found,
                     const ArenaManifest& expected) {
  if (found.version != kArenaFormatVersion) {
    return Status::FailedPrecondition(
        "arena format version " + std::to_string(found.version) +
        " != " + std::to_string(kArenaFormatVersion));
  }
  if (found.kind != expected.kind || found.workload != expected.workload ||
      found.seed != expected.seed || found.stream != expected.stream) {
    return Status::FailedPrecondition(
        "arena identity mismatch: saved (" + found.kind + ", " +
        found.workload + ", seed=" + std::to_string(found.seed) + ", " +
        found.stream + ") vs requested (" + expected.kind + ", " +
        expected.workload + ", seed=" + std::to_string(expected.seed) +
        ", " + expected.stream + ")");
  }
  if (found.capacity < expected.capacity) {
    return Status::FailedPrecondition(
        "saved arena capacity " + std::to_string(found.capacity) +
        " < requested " + std::to_string(expected.capacity));
  }
  if (expected.num_vertices != 0 &&
      found.num_vertices != expected.num_vertices) {
    return Status::FailedPrecondition(
        "saved arena has " + std::to_string(found.num_vertices) +
        " vertices, requested " + std::to_string(expected.num_vertices));
  }
  return Status::OK();
}

/// Reads payload.bin, verifies size + checksum against the manifest, and
/// checks the binary header (magic / version / kind / shape).
StatusOr<std::shared_ptr<PayloadReader>> OpenPayload(
    const std::string& dir, const ArenaManifest& manifest,
    std::uint32_t expected_kind) {
  const std::string path = dir + kPayloadFile;
  FaultInjector* inject = fault_injector();
  if (inject != nullptr) {
    SOLDIST_RETURN_IF_ERROR(inject->Check(FaultOp::kOpen, path));
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("no arena payload at '" + path + "'");
  const std::streamoff size = in.tellg();
  if (static_cast<std::uint64_t>(size) != manifest.payload_bytes) {
    return Status::IoError(
        "arena payload '" + path + "' is " + std::to_string(size) +
        " bytes, manifest says " + std::to_string(manifest.payload_bytes) +
        " (truncated?)");
  }
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return Status::IoError("short read from '" + path + "'");
  if (inject != nullptr) {
    SOLDIST_RETURN_IF_ERROR(inject->Check(FaultOp::kRead, path));
    if (inject->MutilateReadSize(bytes.size()) < bytes.size()) {
      return Status::IoError("short read from '" + path + "' (injected)");
    }
  }
  if (Fnv1a(bytes.data(), bytes.size()) != manifest.checksum) {
    return Status::IoError("arena payload '" + path +
                           "' fails its checksum (corrupted)");
  }
  auto reader = std::make_shared<PayloadReader>(std::move(bytes));
  std::uint64_t magic = 0;
  std::uint32_t version = 0, kind = 0, num_vertices = 0, reserved = 0;
  std::uint64_t capacity = 0;
  if (!reader->GetU64(&magic) || !reader->GetU32(&version) ||
      !reader->GetU32(&kind) || !reader->GetU32(&num_vertices) ||
      !reader->GetU32(&reserved) || !reader->GetU64(&capacity)) {
    return Status::IoError("arena payload '" + path + "' header truncated");
  }
  if (magic != kPayloadMagic) {
    return Status::FailedPrecondition(
        "arena payload '" + path +
        "' has a wrong magic (different endianness or not an arena file)");
  }
  if (version != kArenaFormatVersion) {
    return Status::FailedPrecondition("arena payload version " +
                                      std::to_string(version) +
                                      " != " +
                                      std::to_string(kArenaFormatVersion));
  }
  if (kind != expected_kind || num_vertices != manifest.num_vertices ||
      capacity != manifest.capacity) {
    return Status::IoError("arena payload '" + path +
                           "' header disagrees with its manifest");
  }
  return reader;
}

void WriteHeader(PayloadWriter* writer, std::uint32_t kind,
                 std::uint32_t num_vertices, std::uint64_t capacity) {
  writer->PutU64(kPayloadMagic);
  writer->PutU32(kArenaFormatVersion);
  writer->PutU32(kind);
  writer->PutU32(num_vertices);
  writer->PutU32(0);  // reserved
  writer->PutU64(capacity);
}

std::vector<TraversalCounters> PrefixDeltas(const WorldArena& arena) {
  std::vector<TraversalCounters> deltas;
  deltas.reserve(arena.capacity());
  TraversalCounters prev;  // zero
  for (std::uint64_t i = 1; i <= arena.capacity(); ++i) {
    const TraversalCounters cum = arena.PrefixCounters(i);
    TraversalCounters delta;
    delta.vertices = cum.vertices - prev.vertices;
    delta.edges = cum.edges - prev.edges;
    delta.sample_vertices = cum.sample_vertices - prev.sample_vertices;
    delta.sample_edges = cum.sample_edges - prev.sample_edges;
    deltas.push_back(delta);
    prev = cum;
  }
  return deltas;
}

Status FinishSave(PayloadWriter* writer, ArenaManifest* manifest,
                  const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create arena dir '" + dir +
                           "': " + ec.message());
  }
  manifest->version = kArenaFormatVersion;
  SOLDIST_RETURN_IF_ERROR(writer->Flush(dir + kPayloadFile,
                                        &manifest->payload_bytes,
                                        &manifest->checksum));
  // Manifest last: a crash mid-save leaves a manifest-less directory
  // that reads as kNotFound, not as a corrupt hit.
  return WriteManifest(*manifest, dir);
}

}  // namespace

StatusOr<ArenaManifest> ReadArenaManifest(const std::string& dir) {
  const std::string path = dir + kManifestFile;
  FaultInjector* inject = fault_injector();
  if (inject != nullptr) {
    SOLDIST_RETURN_IF_ERROR(inject->Check(FaultOp::kOpen, path));
  }
  std::ifstream in(path);
  if (!in) return Status::NotFound("no arena manifest at '" + path + "'");
  ArenaManifest manifest;
  manifest.version = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::IoError("malformed manifest line '" + line + "' in '" +
                             path + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    std::uint64_t number = 0;
    if (key == "kind") {
      manifest.kind = value;
    } else if (key == "workload") {
      manifest.workload = value;
    } else if (key == "stream") {
      manifest.stream = value;
    } else if (ParseU64(value, &number)) {
      if (key == "format_version") {
        manifest.version = static_cast<std::uint32_t>(number);
      } else if (key == "seed") {
        manifest.seed = number;
      } else if (key == "capacity") {
        manifest.capacity = number;
      } else if (key == "num_vertices") {
        manifest.num_vertices = number;
      } else if (key == "payload_bytes") {
        manifest.payload_bytes = number;
      } else if (key == "checksum") {
        manifest.checksum = number;
      }  // unknown numeric keys: forward-compatible skip
    } else {
      return Status::IoError("malformed manifest value '" + line +
                             "' in '" + path + "'");
    }
  }
  if (manifest.kind.empty() || manifest.capacity == 0) {
    return Status::IoError("incomplete arena manifest at '" + path + "'");
  }
  return manifest;
}

Status VerifyArena(const std::string& dir) {
  StatusOr<ArenaManifest> manifest = ReadArenaManifest(dir);
  if (!manifest.ok()) return manifest.status();
  if (manifest.value().version != kArenaFormatVersion) {
    return Status::FailedPrecondition(
        "arena format version " + std::to_string(manifest.value().version) +
        " != " + std::to_string(kArenaFormatVersion));
  }
  std::uint32_t expected_kind = 0;
  if (manifest.value().kind == "rr") {
    expected_kind = kKindRr;
  } else if (manifest.value().kind == "snapshot") {
    expected_kind = kKindSnapshot;
  } else {
    return Status::FailedPrecondition("unknown arena kind '" +
                                      manifest.value().kind + "'");
  }
  // OpenPayload verifies size, whole-file checksum, and the binary
  // header (magic / version / kind / shape vs manifest). Deeper
  // structural damage inside the sections is impossible past the
  // checksum unless the save itself was buggy — LoadArena still
  // validates structure at load time.
  StatusOr<std::shared_ptr<PayloadReader>> opened =
      OpenPayload(dir, manifest.value(), expected_kind);
  if (!opened.ok()) return opened.status();
  return Status::OK();
}

Status SaveRrArena(const RrArena& arena, ArenaManifest manifest,
                   const std::string& dir) {
  if (!arena.is_flat()) {
    return Status::FailedPrecondition(
        "SaveRrArena requires a flat arena (save before ConvertStorage)");
  }
  const store::RrFlatPayload* payload = arena.storage().flat_payload();
  SOLDIST_CHECK(payload != nullptr);
  manifest.kind = "rr";
  manifest.capacity = arena.capacity();
  manifest.num_vertices = arena.num_vertices();
  PayloadWriter writer;
  WriteHeader(&writer, kKindRr, arena.num_vertices(), arena.capacity());
  writer.PutVector(payload->set_offsets);
  writer.PutVector(payload->flat);
  // The inverted index is NOT persisted — the load rebuilds it with the
  // same counting sort, byte-identically, at half the file size.
  for (const TraversalCounters& delta : PrefixDeltas(arena)) {
    writer.PutCounters(delta);
  }
  return FinishSave(&writer, &manifest, dir);
}

StatusOr<std::shared_ptr<RrArena>> LoadRrArena(
    const std::string& dir, const ArenaManifest& expected) {
  StatusOr<ArenaManifest> manifest = ReadArenaManifest(dir);
  if (!manifest.ok()) return manifest.status();
  ArenaManifest want = expected;
  want.kind = "rr";
  SOLDIST_RETURN_IF_ERROR(MatchManifest(manifest.value(), want));
  StatusOr<std::shared_ptr<PayloadReader>> opened =
      OpenPayload(dir, manifest.value(), kKindRr);
  if (!opened.ok()) return opened.status();
  PayloadReader& reader = *opened.value();
  const std::uint64_t capacity = manifest.value().capacity;
  std::vector<std::uint64_t> set_offsets;
  std::vector<VertexId> flat;
  if (!reader.GetVector(capacity + 1, &set_offsets)) {
    return Status::IoError("arena payload truncated in set offsets");
  }
  if (set_offsets.front() != 0) {
    return Status::IoError("arena payload has corrupt set offsets");
  }
  for (std::uint64_t i = 0; i < capacity; ++i) {
    if (set_offsets[i] > set_offsets[i + 1]) {
      return Status::IoError("arena payload has non-monotone set offsets");
    }
  }
  if (!reader.GetVector(set_offsets.back(), &flat)) {
    return Status::IoError("arena payload truncated in the flat set array");
  }
  const auto num_vertices =
      static_cast<VertexId>(manifest.value().num_vertices);
  for (VertexId v : flat) {
    if (v >= num_vertices) {
      return Status::IoError("arena payload has out-of-range vertex ids");
    }
  }
  std::vector<TraversalCounters> per_set(capacity);
  for (std::uint64_t i = 0; i < capacity; ++i) {
    if (!reader.GetCounters(&per_set[i])) {
      return Status::IoError("arena payload truncated in counter deltas");
    }
  }
  if (!reader.exhausted()) {
    return Status::IoError("arena payload has trailing bytes");
  }
  return std::make_shared<RrArena>(RrArena::FromParts(
      num_vertices, std::move(flat), std::move(set_offsets), per_set));
}

Status SaveSnapshotArena(const SnapshotArena& arena, ArenaManifest manifest,
                         const std::string& dir) {
  manifest.kind = "snapshot";
  manifest.capacity = arena.capacity();
  manifest.num_vertices = arena.num_vertices();
  PayloadWriter writer;
  WriteHeader(&writer, kKindSnapshot, arena.num_vertices(),
              arena.capacity());
  for (std::uint64_t i = 0; i < arena.capacity(); ++i) {
    const CondensedSnapshot& snap = arena.World(i);
    const SnapshotWarmth& warmth = arena.Warmth(i);
    const std::uint32_t num_components = snap.num_components();
    SOLDIST_CHECK(warmth.bound.size() == num_components);
    writer.PutU32(num_components);
    writer.PutVector(snap.comp_of);
    writer.PutVector(snap.comp_size);
    writer.PutVector(snap.dag.offsets);
    writer.PutVector(snap.dag.targets);
    writer.PutVector(snap.rev.offsets);
    writer.PutVector(snap.rev.targets);
    writer.PutVector(warmth.bound);
    writer.PutVector(warmth.is_exact);
  }
  for (const TraversalCounters& delta : PrefixDeltas(arena)) {
    writer.PutCounters(delta);
  }
  return FinishSave(&writer, &manifest, dir);
}

StatusOr<std::shared_ptr<SnapshotArena>> LoadSnapshotArena(
    const std::string& dir, const ArenaManifest& expected) {
  StatusOr<ArenaManifest> manifest = ReadArenaManifest(dir);
  if (!manifest.ok()) return manifest.status();
  ArenaManifest want = expected;
  want.kind = "snapshot";
  SOLDIST_RETURN_IF_ERROR(MatchManifest(manifest.value(), want));
  StatusOr<std::shared_ptr<PayloadReader>> opened =
      OpenPayload(dir, manifest.value(), kKindSnapshot);
  if (!opened.ok()) return opened.status();
  PayloadReader& reader = *opened.value();
  const std::uint64_t capacity = manifest.value().capacity;
  const auto num_vertices =
      static_cast<VertexId>(manifest.value().num_vertices);
  std::vector<CondensedSnapshot> snaps(capacity);
  std::vector<SnapshotWarmth> warmth(capacity);
  auto read_dag = [&](CondensationDag* dag, std::uint32_t num_components) {
    if (!reader.GetVector(static_cast<std::uint64_t>(num_components) + 1,
                          &dag->offsets)) {
      return false;
    }
    if (dag->offsets.front() != 0) return false;
    for (std::uint32_t c = 0; c < num_components; ++c) {
      if (dag->offsets[c] > dag->offsets[c + 1]) return false;
    }
    if (!reader.GetVector(dag->offsets.back(), &dag->targets)) return false;
    for (std::uint32_t t : dag->targets) {
      if (t >= num_components) return false;
    }
    return true;
  };
  for (std::uint64_t i = 0; i < capacity; ++i) {
    std::uint32_t num_components = 0;
    CondensedSnapshot& snap = snaps[i];
    const bool ok =
        reader.GetU32(&num_components) && num_components >= 1 &&
        num_components <= num_vertices &&
        reader.GetVector(num_vertices, &snap.comp_of) &&
        reader.GetVector(num_components, &snap.comp_size) &&
        read_dag(&snap.dag, num_components) &&
        read_dag(&snap.rev, num_components) &&
        reader.GetVector(num_components, &warmth[i].bound) &&
        reader.GetVector(num_components, &warmth[i].is_exact);
    if (!ok) {
      return Status::IoError("arena payload truncated or corrupt in world " +
                             std::to_string(i));
    }
    for (std::uint32_t c : snap.comp_of) {
      if (c >= num_components) {
        return Status::IoError("arena payload has out-of-range components");
      }
    }
  }
  std::vector<TraversalCounters> per_snapshot(capacity);
  for (std::uint64_t i = 0; i < capacity; ++i) {
    if (!reader.GetCounters(&per_snapshot[i])) {
      return Status::IoError("arena payload truncated in counter deltas");
    }
  }
  if (!reader.exhausted()) {
    return Status::IoError("arena payload has trailing bytes");
  }
  return std::make_shared<SnapshotArena>(SnapshotArena::Restore(
      num_vertices, std::move(snaps), std::move(warmth), per_snapshot));
}

}  // namespace store
}  // namespace soldist
