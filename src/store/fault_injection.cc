#include "store/fault_injection.h"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "random/splitmix64.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace soldist {
namespace store {
namespace {

/// Uniform double in [0, 1) from one seeded draw (53 mantissa bits).
double UnitDraw(std::uint64_t seed, std::uint64_t index) {
  SplitMix64 rng(DeriveSeed(seed, index));
  return static_cast<double>(rng.Next() >> 11) *
         (1.0 / 9007199254740992.0);  // 2^-53
}

std::mutex g_install_mu;
std::unique_ptr<FaultInjector> g_owned;         // guarded by g_install_mu
std::atomic<FaultInjector*> g_injector{nullptr};  // hot-path view
std::once_flag g_env_once;

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpen:
      return "open";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kSync:
      return "sync";
    case FaultOp::kMmapChunk:
      return "mmap-chunk";
    case FaultOp::kRename:
      return "rename";
  }
  return "unknown";
}

bool ParseFaultOpName(const std::string& name, FaultOp* op) {
  static constexpr FaultOp kAll[] = {FaultOp::kOpen,  FaultOp::kRead,
                                     FaultOp::kWrite, FaultOp::kSync,
                                     FaultOp::kMmapChunk, FaultOp::kRename};
  for (FaultOp candidate : kAll) {
    if (name == FaultOpName(candidate)) {
      *op = candidate;
      return true;
    }
  }
  return false;
}

StatusOr<FaultSpec> FaultSpec::Parse(const std::string& text) {
  FaultSpec spec;
  if (Trim(text).empty()) {
    return Status::InvalidArgument(
        "fault-spec: empty spec (omit the flag to disable injection)");
  }
  for (const std::string& raw : Split(text, ',')) {
    const std::string token(Trim(raw));
    if (token.empty()) {
      return Status::InvalidArgument("fault-spec: empty token in '" + text +
                                     "'");
    }
    const std::size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : token.substr(eq + 1);
    if (key == "torn-write" || key == "short-read") {
      if (eq != std::string::npos) {
        return Status::InvalidArgument("fault-spec: '" + key +
                                       "' is a bare flag, got '" + token +
                                       "'");
      }
      (key == "torn-write" ? spec.torn_write : spec.short_read) = true;
      continue;
    }
    if (eq == std::string::npos || value.empty()) {
      return Status::InvalidArgument("fault-spec: '" + token +
                                     "' needs a value (key=value)");
    }
    if (key == "error-rate") {
      double rate = 0.0;
      if (!ParseDouble(value, &rate) || rate < 0.0 || rate > 1.0) {
        return Status::InvalidArgument(
            "fault-spec: error-rate must be a number in [0, 1], got '" +
            value + "'");
      }
      spec.error_rate = rate;
    } else if (key == "error-every") {
      std::uint64_t n = 0;
      if (!ParseUint64(value, &n) || n == 0) {
        return Status::InvalidArgument(
            "fault-spec: error-every must be a positive integer, got '" +
            value + "'");
      }
      spec.error_every = n;
    } else if (key == "seed") {
      std::uint64_t s = 0;
      if (!ParseUint64(value, &s)) {
        return Status::InvalidArgument(
            "fault-spec: seed must be a non-negative integer, got '" + value +
            "'");
      }
      spec.seed = s;
    } else if (key == "slow-read-us") {
      std::uint64_t us = 0;
      if (!ParseUint64(value, &us)) {
        return Status::InvalidArgument(
            "fault-spec: slow-read-us must be a non-negative integer, "
            "got '" +
            value + "'");
      }
      spec.slow_read_us = us;
    } else if (key == "crash-at") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= value.size()) {
        return Status::InvalidArgument(
            "fault-spec: crash-at wants <boundary>:<n>, got '" + value + "'");
      }
      const std::string boundary = value.substr(0, colon);
      const std::string count = value.substr(colon + 1);
      FaultOp op = FaultOp::kWrite;
      if (!ParseFaultOpName(boundary, &op)) {
        return Status::InvalidArgument(
            "fault-spec: crash-at boundary must be one of open, read, "
            "write, sync, mmap-chunk, rename; got '" +
            boundary + "'");
      }
      std::uint64_t n = 0;
      if (!ParseUint64(count, &n) || n == 0) {
        return Status::InvalidArgument(
            "fault-spec: crash-at occurrence must be a positive integer "
            "(1-based), got '" +
            count + "'");
      }
      spec.crash_at_op = op;
      spec.crash_at_n = n;
    } else {
      return Status::InvalidArgument(
          "fault-spec: unknown key '" + key +
          "' (want error-rate, error-every, seed, torn-write, short-read, "
          "slow-read-us, crash-at)");
    }
  }
  return spec;
}

std::string FaultSpec::ToString() const {
  std::vector<std::string> parts;
  if (error_rate > 0.0) {
    parts.push_back("error-rate=" + FormatDouble(error_rate, 6));
  }
  if (error_every > 0) {
    parts.push_back("error-every=" + std::to_string(error_every));
  }
  if (seed != 1) parts.push_back("seed=" + std::to_string(seed));
  if (torn_write) parts.push_back("torn-write");
  if (short_read) parts.push_back("short-read");
  if (slow_read_us > 0) {
    parts.push_back("slow-read-us=" + std::to_string(slow_read_us));
  }
  if (crash_at_n > 0) {
    parts.push_back("crash-at=" + std::string(FaultOpName(crash_at_op)) + ":" +
                    std::to_string(crash_at_n));
  }
  return Join(parts, ",");
}

void FaultInjector::MaybeCrash(FaultOp op) {
  if (spec_.crash_at_n == 0) return;
  const std::uint64_t occurrence =
      boundary_ops_[static_cast<int>(op)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  if (op != spec_.crash_at_op || occurrence != spec_.crash_at_n) return;
  // _exit, not exit/abort: no atexit handlers, no stdio flush, no stack
  // unwinding — whatever bytes the kernel already has are all that
  // survives, exactly like a power cut at this boundary.
  ::_exit(kCrashExitCode);
}

Status FaultInjector::Check(FaultOp op, const std::string& what) {
  MaybeCrash(op);
  const std::uint64_t index = op_counter_.fetch_add(1,
                                                    std::memory_order_relaxed);
  ops_.fetch_add(1, std::memory_order_relaxed);
  if (spec_.slow_read_us > 0 &&
      (op == FaultOp::kRead || op == FaultOp::kMmapChunk)) {
    delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(spec_.slow_read_us));
  }
  bool fail = false;
  if (spec_.error_every > 0 && (index + 1) % spec_.error_every == 0) {
    fail = true;
  }
  if (!fail && spec_.error_rate > 0.0 &&
      UnitDraw(spec_.seed, index) < spec_.error_rate) {
    fail = true;
  }
  if (fail) {
    injected_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected fault (" + std::string(FaultOpName(op)) +
                           " #" + std::to_string(index + 1) + "): " + what);
  }
  return Status::OK();
}

std::size_t FaultInjector::MutilateWriteSize(std::size_t size) {
  if (!spec_.torn_write || size <= 1) return size;
  torn_writes_.fetch_add(1, std::memory_order_relaxed);
  return size / 2;
}

std::size_t FaultInjector::MutilateReadSize(std::size_t size) {
  if (!spec_.short_read || size <= 1) return size;
  short_reads_.fetch_add(1, std::memory_order_relaxed);
  return size / 2;
}

void FaultInjector::DelaySlowRead() {
  if (spec_.slow_read_us == 0) return;
  delays_.fetch_add(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::microseconds(spec_.slow_read_us));
}

FaultInjector* fault_injector() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("SOLDIST_FAULT_SPEC");
    if (env == nullptr || *env == '\0') return;
    Status installed = InstallFaultInjector(env);
    if (!installed.ok()) {
      SOLDIST_LOG(Warning) << "SOLDIST_FAULT_SPEC ignored: "
                           << installed.ToString();
    }
  });
  return g_injector.load(std::memory_order_acquire);
}

Status InstallFaultInjector(const std::string& spec_text) {
  // An explicit install outranks the SOLDIST_FAULT_SPEC environment
  // preset: consume the env once-flag so a later first-IO call of
  // fault_injector() cannot replace what was installed here (tests that
  // install their own spec must win over a CI-wide preset).
  std::call_once(g_env_once, [] {});
  if (Trim(spec_text).empty()) {
    UninstallFaultInjector();
    return Status::OK();
  }
  StatusOr<FaultSpec> spec = FaultSpec::Parse(spec_text);
  if (!spec.ok()) return spec.status();
  std::lock_guard<std::mutex> lock(g_install_mu);
  g_injector.store(nullptr, std::memory_order_release);
  g_owned = std::make_unique<FaultInjector>(spec.value());
  g_injector.store(g_owned.get(), std::memory_order_release);
  return Status::OK();
}

void UninstallFaultInjector() {
  std::call_once(g_env_once, [] {});  // explicit uninstall outranks the env
  std::lock_guard<std::mutex> lock(g_install_mu);
  g_injector.store(nullptr, std::memory_order_release);
  g_owned.reset();
}

}  // namespace store
}  // namespace soldist
