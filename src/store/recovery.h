// Startup recovery sweep for an --arena-dir tree: turns whatever a
// crashed (or byte-flipped) predecessor left behind into a directory the
// serving layer can trust blindly.
//
// The arena_io tmp + atomic-rename protocol makes classification
// unambiguous:
//
//   *.tmp file                      uncommitted write — always debris,
//                                   deleted (the rename never happened).
//   payload.bin without manifest    crash between the payload commit and
//                                   the manifest commit — orphan, deleted
//                                   (the save as a whole never committed).
//   manifest + payload failing      bit rot / tampering after a clean
//   VerifyArena                     commit — QUARANTINED (moved into
//                                   <root>/quarantine/) so the bytes
//                                   survive for forensics but can never
//                                   be served.
//   manifest + payload verifying    healthy — untouched.
//
// The sweep is idempotent (a second pass over a recovered tree is a
// no-op) and conservative: nothing that passes verification is ever
// modified. QueryService runs it once at startup when --arena-dir is
// set; `soldist_fsck repair` runs the same code standalone; the
// background scrubber reuses QuarantineEntry for entries that rot while
// the service is up.

#ifndef SOLDIST_STORE_RECOVERY_H_
#define SOLDIST_STORE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace soldist {
namespace store {

/// What one recovery sweep saw and did. All counts are for this sweep
/// only (the sweep is stateless between runs).
struct RecoveryReport {
  std::uint64_t scanned_entries = 0;     ///< entry directories visited
  std::uint64_t healthy_entries = 0;     ///< passed VerifyArena
  std::uint64_t cleaned_tmp_files = 0;   ///< *.tmp debris deleted
  std::uint64_t orphaned_payloads = 0;   ///< payload-without-manifest dirs deleted
  std::uint64_t quarantined_entries = 0; ///< corrupt entries moved aside
  std::uint64_t removed_empty_dirs = 0;  ///< entry dirs left empty after cleanup
  std::uint64_t sweep_errors = 0;        ///< filesystem ops that failed mid-sweep
  /// Human-readable "<action>: <path> (<why>)" lines, in sweep order —
  /// what soldist_fsck prints and the CI artifact records.
  std::vector<std::string> actions;

  /// True when the tree needed no intervention.
  bool Clean() const {
    return cleaned_tmp_files == 0 && orphaned_payloads == 0 &&
           quarantined_entries == 0 && removed_empty_dirs == 0 &&
           sweep_errors == 0;
  }

  /// One-object JSON rendering (counts + actions array).
  std::string ToJson() const;
};

/// Moves `entry_dir` (an immediate subdirectory of `root`) into
/// `<root>/quarantine/`, creating it on demand and suffixing the target
/// name (".1", ".2", ...) if a previous quarantine of the same entry
/// exists. On success `*moved_to` (optional) receives the final path.
Status QuarantineEntry(const std::string& root, const std::string& entry_dir,
                       std::string* moved_to);

/// Sweeps one arena root (the --arena-dir): classifies every immediate
/// child per the table above and repairs in place. Missing root is not
/// an error (nothing was ever saved — report comes back empty). The
/// `<root>/quarantine/` subtree is never scanned.
StatusOr<RecoveryReport> RecoverArenaDir(const std::string& root);

}  // namespace store
}  // namespace soldist

#endif  // SOLDIST_STORE_RECOVERY_H_
