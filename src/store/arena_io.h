// Session-lifetime arena persistence: a versioned on-disk format so
// api::Session, the shared oracle, benches and the --query REPL reuse ONE
// sampled arena across processes instead of resampling 10^5-10^7 RR sets
// each (ISSUE 8).
//
// Layout of an arena directory:
//
//   <dir>/manifest.txt   key=value identity + integrity record:
//                        format_version, kind (rr|snapshot), workload
//                        label, seed, stream family ("seq" or
//                        "engine/<chunk>"), capacity, num_vertices,
//                        payload_bytes, checksum (FNV-1a 64 over the
//                        payload file).
//   <dir>/payload.bin    binary payload. Starts with a u64 magic that
//                        reads back wrong on an opposite-endian machine
//                        (endianness guard), then version/kind/shape,
//                        then the kind-specific sections. RR arenas
//                        persist the flat set array + per-set offsets +
//                        per-set counter deltas (the inverted index is
//                        rebuilt deterministically on load, halving the
//                        file); Snapshot arenas persist each condensed
//                        world, its warmth (saved, not recomputed — the
//                        loader has no InfluenceGraph) and the deltas.
//
// Crash consistency: both files are written through a `*.tmp` +
// atomic-rename protocol (write tmp, fsync, rename, fsync dir), payload
// committed before manifest — the manifest rename is the commit point
// of the whole save. A process killed at ANY point mid-save therefore
// leaves either (a) `*.tmp` debris and/or a payload without a manifest
// (both cleaned unambiguously by store/recovery) reading as kNotFound,
// or (b) the complete entry — never a half-entry under final names.
// ctest crash_recovery_test forks a child per crash-at boundary and
// proves the reload is byte-identical or a clean miss.
//
// Everything fallible returns Status: a corrupted, truncated,
// wrong-version, wrong-endian or identity-mismatched file is a load
// MISS the caller falls back from (resample + save), never an abort —
// ctest arena_store_test drives each failure mode.
//
// Determinism contract: Save(Load(x)) == x and Load(Save(arena)) serves
// byte-identical queries to `arena` at every prefix cut, both stream
// families, because the payload IS the sampled bytes (no re-encoding)
// and the index rebuild is the same counting sort as the original build.

#ifndef SOLDIST_STORE_ARENA_IO_H_
#define SOLDIST_STORE_ARENA_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rr_arena.h"
#include "sim/snapshot_arena.h"
#include "util/status.h"

namespace soldist {
namespace store {

/// Bump when the payload layout changes; older files load as
/// kFailedPrecondition (callers resample).
inline constexpr std::uint32_t kArenaFormatVersion = 1;

/// \brief The identity + integrity record of a persisted arena. The
/// identity fields (kind, workload, seed, stream) say WHAT was sampled;
/// a load only proceeds when they match the request exactly and the
/// saved capacity covers the requested one.
struct ArenaManifest {
  std::uint32_t version = kArenaFormatVersion;
  std::string kind;      // "rr" | "snapshot"
  std::string workload;  // workload label (network/prob/model key)
  std::uint64_t seed = 0;
  std::string stream;    // "seq" | "engine/<chunk_size>"
  std::uint64_t capacity = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;  // FNV-1a 64 of payload.bin
};

/// Parses `<dir>/manifest.txt`; kNotFound when absent.
StatusOr<ArenaManifest> ReadArenaManifest(const std::string& dir);

/// Integrity check of a persisted arena entry WITHOUT materializing it:
/// manifest present and well-formed, format version current, kind
/// known, payload present with the manifest's exact size, whole-file
/// FNV-1a checksum, and a consistent binary header. kNotFound when the
/// directory holds no manifest (debris, not corruption); any other
/// non-OK Status names what is broken. Used by the startup recovery
/// sweep, the background scrubber, and soldist_fsck.
Status VerifyArena(const std::string& dir);

/// Persists a FLAT RR arena (kFailedPrecondition otherwise — save before
/// ConvertStorage). `manifest` supplies the identity fields (workload,
/// seed, stream); shape, checksum and version are filled in here. The
/// payload is written before the manifest, so a crash mid-save leaves a
/// directory that reads as kNotFound, not as a corrupt hit.
Status SaveRrArena(const RrArena& arena, ArenaManifest manifest,
                   const std::string& dir);

/// Loads an RR arena whose manifest matches `expected`'s identity fields
/// and has capacity >= expected.capacity. Always returns a flat arena
/// (convert afterwards); byte-identical to the arena that was saved.
StatusOr<std::shared_ptr<RrArena>> LoadRrArena(const std::string& dir,
                                               const ArenaManifest& expected);

Status SaveSnapshotArena(const SnapshotArena& arena, ArenaManifest manifest,
                         const std::string& dir);

StatusOr<std::shared_ptr<SnapshotArena>> LoadSnapshotArena(
    const std::string& dir, const ArenaManifest& expected);

}  // namespace store
}  // namespace soldist

#endif  // SOLDIST_STORE_ARENA_IO_H_
