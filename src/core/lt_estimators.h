// The three algorithmic approaches under the LINEAR THRESHOLD model:
// LT counterparts of OneshotEstimator / SnapshotEstimator / RisEstimator,
// plugging into the same greedy framework (library extension; the paper's
// experiments use IC).

#ifndef SOLDIST_CORE_LT_ESTIMATORS_H_
#define SOLDIST_CORE_LT_ESTIMATORS_H_

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "model/lt.h"
#include "sim/lt_forward_sim.h"
#include "sim/lt_samplers.h"
#include "sim/rr_sampler.h"

namespace soldist {

/// \brief Oneshot under LT: β fresh threshold simulations per estimate.
class LtOneshotEstimator : public InfluenceEstimator {
 public:
  LtOneshotEstimator(const LtWeights* weights, std::uint64_t beta,
                     std::uint64_t seed);

  void Build() override {}
  double Estimate(VertexId v) override;
  void Update(VertexId v) override { seeds_.push_back(v); }
  bool EstimatesAreMarginal() const override { return false; }
  std::uint64_t sample_number() const override { return beta_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "LT-Oneshot"; }

 private:
  std::uint64_t beta_;
  Rng rng_;
  LtForwardSimulator simulator_;
  std::vector<VertexId> seeds_;
  std::vector<VertexId> scratch_;
  TraversalCounters counters_;
};

/// \brief Snapshot under LT: τ live-edge graphs (<= n edges each), naive
/// marginal estimates with the base reach cached per greedy round.
class LtSnapshotEstimator : public InfluenceEstimator {
 public:
  LtSnapshotEstimator(const LtWeights* weights, std::uint64_t tau,
                      std::uint64_t seed);

  void Build() override;
  double Estimate(VertexId v) override;
  void Update(VertexId v) override;
  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return tau_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "LT-Snapshot"; }

 private:
  const LtWeights* weights_;
  std::uint64_t tau_;
  Rng rng_;
  LtSnapshotSampler sampler_;
  std::vector<Snapshot> snapshots_;
  std::vector<std::uint32_t> base_reach_;
  std::vector<VertexId> seeds_;
  std::vector<VertexId> scratch_;
  TraversalCounters counters_;
  bool built_ = false;
};

/// \brief RIS under LT: θ backward-walk RR sets, coverage as under IC.
class LtRisEstimator : public InfluenceEstimator {
 public:
  LtRisEstimator(const LtWeights* weights, std::uint64_t theta,
                 std::uint64_t seed);

  void Build() override;
  double Estimate(VertexId v) override;
  void Update(VertexId v) override;
  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return theta_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "LT-RIS"; }

 private:
  const LtWeights* weights_;
  std::uint64_t theta_;
  Rng target_rng_;
  Rng coin_rng_;
  LtRrSampler sampler_;
  RrCollection collection_;
  std::vector<std::uint32_t> cover_count_;
  std::vector<std::uint8_t> set_active_;
  TraversalCounters counters_;
  bool built_ = false;
};

/// Factory mirroring MakeEstimator for the LT model.
std::unique_ptr<InfluenceEstimator> MakeLtEstimator(
    const LtWeights* weights, Approach approach, std::uint64_t sample_number,
    std::uint64_t seed);

}  // namespace soldist

#endif  // SOLDIST_CORE_LT_ESTIMATORS_H_
