// The three algorithmic approaches under the LINEAR THRESHOLD model:
// LT counterparts of OneshotEstimator / SnapshotEstimator / RisEstimator,
// plugging into the same greedy framework (the paper runs its study under
// both IC and LT).
//
// Build parallelism: unlike the IC estimators — whose sequential default
// must stay bit-identical to the pre-engine code — the LT estimators had
// no pre-existing experiment stream to preserve, so they ALWAYS draw
// through SamplingEngine's chunked deterministic streams. With the default
// SamplingOptions the engine runs inline on the calling thread; any other
// configuration fans the same chunks out across workers. Consequently an
// LT build is a pure function of (seed, sample number, chunk_size):
// byte-identical for the sequential default and for any worker count.

#ifndef SOLDIST_CORE_LT_ESTIMATORS_H_
#define SOLDIST_CORE_LT_ESTIMATORS_H_

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "model/lt.h"
#include "sim/lt_forward_sim.h"
#include "sim/lt_samplers.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// \brief Oneshot under LT: β fresh threshold simulations per estimate.
class LtOneshotEstimator : public InfluenceEstimator {
 public:
  LtOneshotEstimator(const LtWeights* weights, std::uint64_t beta,
                     std::uint64_t seed, const SamplingOptions& sampling = {});

  void Build() override {}

  /// Mean activated count over β fresh LT simulations from S ∪ {v}; call j
  /// uses per-chunk streams derived from (seed, call index j), so the
  /// sequence of estimates is deterministic for any worker count.
  double Estimate(VertexId v) override;
  void Update(VertexId v) override { seeds_.push_back(v); }
  bool EstimatesAreMarginal() const override { return false; }
  std::uint64_t sample_number() const override { return beta_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "LT-Oneshot"; }

 private:
  const InfluenceGraph* ig_;
  std::uint64_t beta_;
  /// Reused across Estimate calls (it may own a pool).
  SamplingEngine engine_;
  LtForwardSimulatorCache sim_cache_;  ///< per-slot simulators
  std::uint64_t call_master_;          ///< DeriveSeed(seed, 3)
  std::uint64_t calls_ = 0;
  std::vector<VertexId> seeds_;
  std::vector<VertexId> scratch_;
  TraversalCounters counters_;
};

/// \brief Snapshot under LT: τ live-edge graphs (<= n edges each), naive
/// marginal estimates with the base reach cached per greedy round.
class LtSnapshotEstimator : public InfluenceEstimator {
 public:
  LtSnapshotEstimator(const LtWeights* weights, std::uint64_t tau,
                      std::uint64_t seed,
                      const SamplingOptions& sampling = {});

  /// Samples the τ snapshots through the chunked deterministic streams
  /// (SampleLtSnapshotShards), merged in chunk order.
  void Build() override;
  double Estimate(VertexId v) override;
  void Update(VertexId v) override;
  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return tau_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "LT-Snapshot"; }

 private:
  const LtWeights* weights_;
  std::uint64_t tau_;
  std::uint64_t seed_;
  SamplingOptions sampling_;
  LtSnapshotSampler sampler_;  // reachability BFS on built snapshots
  std::vector<Snapshot> snapshots_;
  std::vector<std::uint32_t> base_reach_;
  std::vector<VertexId> seeds_;
  std::vector<VertexId> scratch_;
  TraversalCounters counters_;
  bool built_ = false;
};

/// \brief RIS under LT: θ backward-walk RR sets, coverage as under IC.
class LtRisEstimator : public InfluenceEstimator {
 public:
  LtRisEstimator(const LtWeights* weights, std::uint64_t theta,
                 std::uint64_t seed, const SamplingOptions& sampling = {});

  /// Draws the θ RR sets through the chunked deterministic streams
  /// (SampleLtRrShards) and bulk-merges the shards into the collection.
  void Build() override;
  double Estimate(VertexId v) override;
  void Update(VertexId v) override;
  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return theta_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "LT-RIS"; }

 private:
  const LtWeights* weights_;
  std::uint64_t theta_;
  std::uint64_t seed_;
  SamplingOptions sampling_;
  RrCollection collection_;
  std::vector<std::uint32_t> cover_count_;
  std::vector<std::uint8_t> set_active_;
  std::vector<std::uint8_t> chosen_;  // seeds committed via Update
  TraversalCounters counters_;
  bool built_ = false;
};

/// Factory mirroring the IC MakeEstimator for the LT model; `sampling`
/// selects the worker count exactly as it does for IC (prefer the unified
/// MakeEstimator(ModelInstance, ...) in core/factory.h).
std::unique_ptr<InfluenceEstimator> MakeLtEstimator(
    const LtWeights* weights, Approach approach, std::uint64_t sample_number,
    std::uint64_t seed, const SamplingOptions& sampling = {});

}  // namespace soldist

#endif  // SOLDIST_CORE_LT_ESTIMATORS_H_
