#include "core/lt_estimators.h"

#include "random/splitmix64.h"

namespace soldist {

LtOneshotEstimator::LtOneshotEstimator(const LtWeights* weights,
                                       std::uint64_t beta,
                                       std::uint64_t seed,
                                       const SamplingOptions& sampling)
    : ig_(&weights->influence_graph()),
      beta_(beta),
      engine_(sampling),
      call_master_(DeriveSeed(seed, 3)) {
  SOLDIST_CHECK(beta_ >= 1);
}

double LtOneshotEstimator::Estimate(VertexId v) {
  scratch_.assign(seeds_.begin(), seeds_.end());
  scratch_.push_back(v);
  return EstimateLtInfluenceSharded(*ig_, scratch_, beta_,
                                    DeriveSeed(call_master_, calls_++),
                                    &engine_, &counters_, &sim_cache_);
}

LtSnapshotEstimator::LtSnapshotEstimator(const LtWeights* weights,
                                         std::uint64_t tau,
                                         std::uint64_t seed,
                                         const SamplingOptions& sampling)
    : weights_(weights),
      tau_(tau),
      seed_(seed),
      sampling_(sampling),
      sampler_(weights) {
  SOLDIST_CHECK(tau_ >= 1);
}

void LtSnapshotEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  snapshots_.reserve(tau_);
  SamplingEngine engine(sampling_);
  std::vector<SnapshotShard> shards =
      SampleLtSnapshotShards(*weights_, seed_, tau_, &engine);
  for (SnapshotShard& shard : shards) {
    counters_ += shard.counters;
    for (Snapshot& snap : shard.snapshots) {
      snapshots_.push_back(std::move(snap));
    }
  }
  base_reach_.assign(tau_, 0);
}

double LtSnapshotEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  scratch_.assign(seeds_.begin(), seeds_.end());
  scratch_.push_back(v);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    // Reachability is monotone in the source set, so the subtraction
    // cannot underflow: r(S+v) >= r(S) = base_reach_[i].
    total += sampler_.CountReachable(snapshots_[i], scratch_, &counters_) -
             base_reach_[i];
  }
  return static_cast<double>(total) / static_cast<double>(tau_);
}

void LtSnapshotEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  seeds_.push_back(v);
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    base_reach_[i] = sampler_.CountReachable(snapshots_[i], seeds_,
                                             &counters_);
  }
}

LtRisEstimator::LtRisEstimator(const LtWeights* weights, std::uint64_t theta,
                               std::uint64_t seed,
                               const SamplingOptions& sampling)
    : weights_(weights),
      theta_(theta),
      seed_(seed),
      sampling_(sampling),
      collection_(weights->influence_graph().num_vertices()) {
  SOLDIST_CHECK(theta_ >= 1);
}

void LtRisEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  SamplingEngine engine(sampling_);
  std::vector<RrShard> shards =
      SampleLtRrShards(*weights_, seed_, theta_, &engine);
  for (const RrShard& shard : shards) counters_ += shard.counters;
  collection_.Merge(std::move(shards));
  collection_.BuildIndex();
  cover_count_.assign(weights_->influence_graph().num_vertices(), 0);
  for (std::uint64_t set_id = 0; set_id < collection_.size(); ++set_id) {
    for (VertexId v : collection_.Set(set_id)) ++cover_count_[v];
  }
  set_active_.assign(collection_.size(), 1);
  chosen_.assign(weights_->influence_graph().num_vertices(), 0);
}

double LtRisEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  SOLDIST_DCHECK(!chosen_[v] || cover_count_[v] == 0)
      << "stale score: chosen seed " << v
      << " still covers active sets — Update must decrement eagerly";
  return static_cast<double>(weights_->influence_graph().num_vertices()) *
         static_cast<double>(cover_count_[v]) / static_cast<double>(theta_);
}

void LtRisEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  chosen_[v] = 1;
  for (std::uint32_t set_id : collection_.InvertedList(v)) {
    if (!set_active_[set_id]) continue;
    set_active_[set_id] = 0;
    for (VertexId w : collection_.Set(set_id)) {
      SOLDIST_DCHECK(cover_count_[w] > 0);
      --cover_count_[w];
    }
  }
}

std::unique_ptr<InfluenceEstimator> MakeLtEstimator(
    const LtWeights* weights, Approach approach, std::uint64_t sample_number,
    std::uint64_t seed, const SamplingOptions& sampling) {
  switch (approach) {
    case Approach::kOneshot:
      return std::make_unique<LtOneshotEstimator>(weights, sample_number,
                                                  seed, sampling);
    case Approach::kSnapshot:
      return std::make_unique<LtSnapshotEstimator>(weights, sample_number,
                                                   seed, sampling);
    case Approach::kRis:
      return std::make_unique<LtRisEstimator>(weights, sample_number, seed,
                                              sampling);
  }
  SOLDIST_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace soldist
