// Snapshot (paper Algorithm 3.3): τ live-edge random graphs sampled in
// Build and shared across the greedy selection. The estimator is monotone
// and submodular because the snapshots are fixed (Section 3.4.1).
//
// Two Estimate strategies with *identical* estimates:
//  * kNaive    — BFS from S ∪ {v} on the full snapshot each call
//                (Algorithm 3.3 verbatim);
//  * kResidual — the graph-reduction technique of Section 3.4.3
//                (Kimura et al. / PMC): Update(v) deletes the vertices
//                reachable from v, so marginals are plain reachability on
//                the shrinking residual graphs; r_G(S+v) − r_G(S) = r_H(v).

#ifndef SOLDIST_CORE_SNAPSHOT_H_
#define SOLDIST_CORE_SNAPSHOT_H_

#include <vector>

#include "core/estimator.h"
#include "model/influence_graph.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_sampler.h"

namespace soldist {

/// \brief The Snapshot estimator.
class SnapshotEstimator : public InfluenceEstimator {
 public:
  enum class Mode { kNaive, kResidual };

  /// \param tau number of snapshots (must be >= 1)
  SnapshotEstimator(const InfluenceGraph* ig, std::uint64_t tau,
                    std::uint64_t seed, Mode mode = Mode::kResidual,
                    const SamplingOptions& sampling = {});

  /// Samples the τ snapshots — through SamplingEngine's deterministic
  /// chunked streams when SamplingOptions::UseEngine(), else through the
  /// legacy sequential loop (bit-identical to the pre-engine code).
  void Build() override;

  /// Estimated marginal gain: (1/τ) Σ_i [r_i(S+v) − r_i(S)].
  double Estimate(VertexId v) override;

  void Update(VertexId v) override;

  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return tau_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "Snapshot"; }

  Mode mode() const { return mode_; }

 private:
  /// Reachable-count from `sources` in snapshot i, skipping vertices
  /// already removed from the residual graph (residual mode only; in
  /// naive mode nothing is ever removed).
  std::uint32_t ResidualReach(std::size_t i,
                              std::span<const VertexId> sources,
                              bool mark_removed);

  const InfluenceGraph* ig_;
  std::uint64_t tau_;
  std::uint64_t seed_;
  Mode mode_;
  SamplingOptions sampling_;
  SnapshotSampler sampler_;
  std::vector<Snapshot> snapshots_;
  /// Naive mode: r_i(S) for the current seed set S.
  std::vector<std::uint32_t> base_reach_;
  std::vector<VertexId> seeds_;
  /// Residual mode: removed_[i * n + v] = 1 when v was deleted from H_i.
  std::vector<std::uint8_t> removed_;
  VisitedMarker visited_;
  std::vector<VertexId> queue_;
  std::vector<VertexId> scratch_;
  TraversalCounters counters_;
  bool built_ = false;
};

}  // namespace soldist

#endif  // SOLDIST_CORE_SNAPSHOT_H_
