// Snapshot (paper Algorithm 3.3): τ live-edge random graphs sampled in
// Build and shared across the greedy selection. The estimator is monotone
// and submodular because the snapshots are fixed (Section 3.4.1).
//
// Three reachability backends with *identical* seed sets and estimates:
//  * kNaive     — BFS from S ∪ {v} on the full snapshot each call
//                 (Algorithm 3.3 verbatim);
//  * kResidual  — the graph-reduction technique of Section 3.4.3
//                 (Kimura et al. / PMC): Update(v) deletes the vertices
//                 reachable from v, so marginals are plain reachability on
//                 the shrinking residual graphs; r_G(S+v) − r_G(S) = r_H(v).
//  * kCondensed — each snapshot is collapsed once at Build to its SCC DAG
//                 (sim/condensed_snapshot.h; condensation preserves
//                 reachability exactly), and greedy rounds run
//                 component-granular on the residual DAG with
//                 incrementally maintained marginal gains: Update marks
//                 the seed's reachable components removed and invalidates
//                 cached gains only for their live DAG ancestors, so
//                 Estimate is a cache hit for every candidate whose reach
//                 set the last Update did not touch. Bottom-k sketches
//                 over each DAG (graph/reach_sketch.h) order CELF's first
//                 iteration through InitialBound — sound upper bounds
//                 (exact where the sketch saturates below k), so
//                 selection is unchanged while the lazy queue touches the
//                 fewest candidates.
//
// Because all three backends consume the SAME sampler streams (legacy
// sequential or engine-chunked), the choice of backend — like the worker
// count — can never change the experiment, only its cost. ctest
// (snapshot_condensed_test) asserts byte-identical RunGreedy and
// RunCelfGreedy outputs across backends and thread counts.

#ifndef SOLDIST_CORE_SNAPSHOT_H_
#define SOLDIST_CORE_SNAPSHOT_H_

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "model/influence_graph.h"
#include "sim/sampling_engine.h"
#include "sim/snapshot_sampler.h"
#include "util/status.h"

namespace soldist {

/// \brief The Snapshot estimator.
class SnapshotEstimator : public InfluenceEstimator {
 public:
  enum class Mode { kNaive, kResidual, kCondensed };

  /// \param tau number of snapshots (must be >= 1)
  SnapshotEstimator(const InfluenceGraph* ig, std::uint64_t tau,
                    std::uint64_t seed, Mode mode = Mode::kResidual,
                    const SamplingOptions& sampling = {});
  ~SnapshotEstimator() override;

  /// Samples the τ snapshots — through SamplingEngine's deterministic
  /// chunked streams when SamplingOptions::UseEngine(), else through the
  /// legacy sequential loop (bit-identical to the pre-engine code). In
  /// kCondensed mode each snapshot is condensed as it is sampled and the
  /// raw live-edge CSR is discarded immediately.
  void Build() override;

  /// Estimated marginal gain: (1/τ) Σ_i [r_i(S+v) − r_i(S)].
  double Estimate(VertexId v) override;

  void Update(VertexId v) override;

  bool EstimatesAreMarginal() const override { return true; }
  bool ProvidesInitialBounds() const override {
    return mode_ == Mode::kCondensed;
  }
  /// kCondensed only: (1/τ) Σ_i bound_i(v), each bound_i sound for
  /// snapshot i (exact when the DAG sketch saturated; otherwise the
  /// topologically capped successor-sum). Precomputed by Build's sketch
  /// pass — the same pass that pre-seeds the gain cache — so this is an
  /// O(1) lookup.
  double InitialBound(VertexId v) override;

  std::uint64_t sample_number() const override { return tau_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "Snapshot"; }

  Mode mode() const { return mode_; }

  /// Heap bytes of estimator-owned state after Build: sample storage plus
  /// per-mode residual bookkeeping and scratch. The condensed backend's
  /// memory win (no raw CSR, component-granular state) is measured here
  /// by ablation_memory.
  std::uint64_t MemoryBytes() const;

  /// Per-mode reachability backend (an implementation detail defined in
  /// the .cc; public only so the backends can subclass it).
  class Backend;

 private:
  const InfluenceGraph* ig_;
  std::uint64_t tau_;
  std::uint64_t seed_;
  Mode mode_;
  SamplingOptions sampling_;
  std::unique_ptr<Backend> backend_;
  TraversalCounters counters_;
  bool built_ = false;
};

class SnapshotArena;

/// \brief The Snapshot estimator served zero-copy from a SnapshotArena
/// prefix (sim/snapshot_arena.h) instead of sampling its own worlds.
///
/// Byte-identical contract: for an arena sampled with (ig, seed,
/// capacity, sampling), ArenaSnapshotEstimator(arena, τ) with τ <=
/// capacity produces the same Estimate/Update/InitialBound sequence —
/// and the same counters() — as a fresh condensed
/// SnapshotEstimator(ig, τ, seed, Mode::kCondensed, sampling), because
/// the streams are prefix-closed and the precomputed warmth is a pure
/// function of each world (ctest snapshot_arena_test). Build costs one
/// warm-state init over the first τ worlds; sampling cost is charged to
/// counters() via the arena's prefix counter table.
class ArenaSnapshotEstimator : public InfluenceEstimator {
 public:
  ArenaSnapshotEstimator(const SnapshotArena* arena, std::uint64_t tau);
  ~ArenaSnapshotEstimator() override;

  void Build() override;
  double Estimate(VertexId v) override;
  void Update(VertexId v) override;
  bool EstimatesAreMarginal() const override { return true; }
  bool ProvidesInitialBounds() const override { return true; }
  double InitialBound(VertexId v) override;
  std::uint64_t sample_number() const override { return tau_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "Snapshot"; }

  /// Heap bytes of estimator-owned residual bookkeeping (the worlds
  /// belong to the arena and are not counted here).
  std::uint64_t MemoryBytes() const;

 private:
  class Core;  // wraps the shared condensed gain core (snapshot.cc)

  const SnapshotArena* arena_;
  std::uint64_t tau_;
  std::unique_ptr<Core> core_;
  TraversalCounters counters_;
  bool built_ = false;
};

/// Canonical display name: "naive" / "residual" / "condensed".
std::string SnapshotModeName(SnapshotEstimator::Mode mode);

/// Inverse of SnapshotModeName, case-insensitive; flag parsing for
/// --snapshot-mode.
StatusOr<SnapshotEstimator::Mode> ParseSnapshotMode(const std::string& name);

}  // namespace soldist

#endif  // SOLDIST_CORE_SNAPSHOT_H_
