// Worst-case sample-number bounds from the literature, as referenced in
// paper Sections 3.3.3, 3.4.3, 3.5.3 and compared against empirical least
// sample numbers in Section 5.2.1. These are *illustrative calculators*:
// the paper's point is precisely that they exceed the empirical
// requirements by orders of magnitude (e.g. 1.0e8 vs 256 on Wiki-Vote).

#ifndef SOLDIST_CORE_BOUNDS_H_
#define SOLDIST_CORE_BOUNDS_H_

#include <cstdint>

#include "graph/types.h"

namespace soldist {

/// Inputs common to the bound formulas.
struct BoundParams {
  std::uint64_t n = 0;     ///< number of vertices
  std::uint64_t m = 0;     ///< number of edges
  std::uint64_t k = 1;     ///< seed size
  double epsilon = 0.05;   ///< accuracy parameter
  double delta = 0.01;     ///< failure probability
  double opt_k = 1.0;      ///< OPT_k (or a lower bound on it)
};

/// Oneshot bound (Tang et al. 2014, Lemma 10, as cited in Section 3.3.3):
/// β = ε⁻² k² n (ln(1/δ) + ln k) / OPT_k simulations per estimate give a
/// (1 − 1/e − ε)-approximation w.p. 1 − δ.
double OneshotSampleBound(const BoundParams& p);

/// Snapshot bound (Karimi et al. 2017, Prop. 3, as cited in Section
/// 3.4.3): τ = n² ε⁻² (k ln n + ln(1/δ)) / 2 random graphs give influence
/// at least (1 − 1/e)·OPT_k − ε·n with probability 1 − δ.
/// (ε here is relative to n, matching the additive form in the paper.)
double SnapshotSampleBound(const BoundParams& p);

/// RIS bound (Tang et al. 2014, TIM+, as cited in Section 3.5.3):
/// θ = (8 + 2ε) n (ln(1/δ) + ln C(n,k)) / (OPT_k ε²).
double RisSampleBound(const BoundParams& p);

/// Borgs et al. total-weight stopping threshold: RR-set generation may
/// stop once Σ w(R) ≥ ε⁻² k (m + n) log₂ n.
double BorgsWeightThreshold(const BoundParams& p);

/// ln C(n, k) computed stably via lgamma.
double LogBinomial(std::uint64_t n, std::uint64_t k);

}  // namespace soldist

#endif  // SOLDIST_CORE_BOUNDS_H_
