#include "core/adaptive.h"

#include "core/factory.h"
#include "core/greedy.h"
#include "random/splitmix64.h"

namespace soldist {

AdaptiveResult SelectSampleNumber(const InfluenceGraph& ig,
                                  const AdaptiveParams& params,
                                  std::uint64_t seed) {
  SOLDIST_CHECK(params.repetitions >= 2);
  SOLDIST_CHECK(params.stable_rounds >= 1);
  SOLDIST_CHECK(params.k >= 1);

  AdaptiveResult result;
  int streak = 0;
  std::vector<VertexId> streak_set;
  std::uint64_t streak_start_sample = 0;

  for (int exponent = 0; exponent <= params.max_exponent; ++exponent) {
    const std::uint64_t s = 1ULL << exponent;
    ++result.rounds;
    bool unanimous = true;
    std::vector<VertexId> first_set;
    for (int rep = 0; rep < params.repetitions; ++rep) {
      std::uint64_t run_seed =
          DeriveSeed(seed, static_cast<std::uint64_t>(exponent) * 1000 +
                               static_cast<std::uint64_t>(rep));
      auto estimator = MakeEstimator(ModelInstance::Ic(&ig),
                                     params.approach, s, run_seed);
      Rng tie_rng(DeriveSeed(run_seed, 1));
      GreedyRunResult run =
          RunGreedy(estimator.get(), ig.num_vertices(), params.k, &tie_rng);
      result.counters += estimator->counters();
      std::vector<VertexId> sorted = run.SortedSeedSet();
      if (rep == 0) {
        first_set = std::move(sorted);
      } else if (sorted != first_set) {
        unanimous = false;
        // Keep running the remaining repetitions? No information gained:
        // the round already failed.
        break;
      }
    }
    result.sample_number = s;
    if (unanimous && (streak == 0 || first_set == streak_set)) {
      if (streak == 0) {
        streak_set = first_set;
        streak_start_sample = s;
      }
      ++streak;
      if (streak >= params.stable_rounds) {
        result.converged = true;
        result.sample_number = streak_start_sample;
        result.seeds = std::move(streak_set);
        return result;
      }
    } else {
      streak = unanimous ? 1 : 0;
      streak_set = unanimous ? first_set : std::vector<VertexId>{};
      streak_start_sample = unanimous ? s : 0;
    }
    result.seeds = std::move(first_set);  // best-effort latest set
  }
  return result;
}

}  // namespace soldist
