// RIS — Reverse Influence Sampling (paper Algorithm 3.4, Borgs et al.):
// θ RR sets drawn in Build turn influence maximization into maximum
// coverage. Estimate(v) is the marginal coverage n·F_R(v); Update removes
// the RR sets covered by the new seed.
//
// Build parallelism: with SamplingOptions::UseEngine() the θ RR sets are
// drawn through SamplingEngine's deterministic chunked streams and merged
// shard-by-shard into the collection; the default (num_threads = 1) keeps
// the legacy two-stream sequential loop, bit-identical to the pre-engine
// code.

#ifndef SOLDIST_CORE_RIS_H_
#define SOLDIST_CORE_RIS_H_

#include <vector>

#include "core/estimator.h"
#include "model/influence_graph.h"
#include "sim/rr_arena.h"
#include "sim/rr_sampler.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// \brief The RIS estimator.
class RisEstimator : public InfluenceEstimator {
 public:
  /// \param theta number of RR sets (must be >= 1)
  RisEstimator(const InfluenceGraph* ig, std::uint64_t theta,
               std::uint64_t seed, const SamplingOptions& sampling = {});

  /// Draws the θ RR sets (two PRNG streams: targets and edge coins, as in
  /// paper Section 4.1) and builds coverage counts.
  void Build() override;

  /// n · (# uncovered RR sets containing v) / θ — the unbiased estimate of
  /// the marginal influence of v w.r.t. the current seed set.
  ///
  /// A chosen seed's score is 0 (not its stale pre-selection coverage):
  /// Update eagerly decrements cover_count_ for every member of every
  /// set it deactivates, v included. DCHECK-guarded here.
  double Estimate(VertexId v) override;

  /// Deactivates all RR sets containing v and decrements the coverage
  /// counts of their members.
  void Update(VertexId v) override;

  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return theta_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "RIS"; }

  /// Empirical mean RR-set size (EPT); valid after Build.
  double EmpiricalEpt() const { return collection_.MeanSize(); }

 private:
  const InfluenceGraph* ig_;
  std::uint64_t theta_;
  std::uint64_t seed_;
  SamplingOptions sampling_;
  RrCollection collection_;
  std::vector<std::uint32_t> cover_count_;  // per vertex, active sets only
  std::vector<std::uint8_t> set_active_;
  std::vector<std::uint8_t> chosen_;  // seeds committed via Update
  TraversalCounters counters_;
  bool built_ = false;
};

/// \brief RIS served from a prefix of a pre-sampled RrArena instead of a
/// fresh build — the sweep-reuse fast path (IC and LT alike; the arena
/// already carries the model's RR sets).
///
/// Byte-identical contract: for an arena sampled with seed S and options
/// O, ArenaRisEstimator(arena, θ) produces the same Estimate sequence,
/// Update effects, and counters as RisEstimator(ig, θ, S, O) /
/// LtRisEstimator(weights, θ, S, O) — the arena's prefix IS that
/// estimator's collection (sim/rr_arena.h), the marginal-coverage
/// arithmetic is identical, and counters() returns the prefix's exact
/// sampling cost. Enforced by ctest (sweep_reuse_test, api_test).
///
/// Mechanically it is the word-packed variant: set-active state lives in
/// packed uint64 words and set ids flow through the arena's 32-bit
/// vertex-major index, so Update touches half the bytes the legacy
/// estimator did.
class ArenaRisEstimator : public InfluenceEstimator {
 public:
  /// \param theta prefix length (1 <= theta <= arena->capacity());
  /// `arena` must outlive the estimator.
  ArenaRisEstimator(const RrArena* arena, std::uint64_t theta);

  /// Cuts the prefix view and seeds cover counts from its cut lengths —
  /// O(n log) instead of a pass over the collection; no sampling happens.
  void Build() override;

  /// n · (# uncovered prefix sets containing v) / θ, exactly as
  /// RisEstimator::Estimate.
  double Estimate(VertexId v) override;

  /// Deactivates the prefix sets containing v (word-packed) and
  /// decrements the coverage counts of their members.
  void Update(VertexId v) override;

  bool EstimatesAreMarginal() const override { return true; }
  std::uint64_t sample_number() const override { return theta_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "RIS"; }

  /// Empirical mean RR-set size of the prefix (EPT).
  double EmpiricalEpt() const { return view_.MeanSize(); }

 private:
  const RrArena* arena_;
  std::uint64_t theta_;
  RrPrefixView view_;
  std::vector<std::uint32_t> cover_count_;  // per vertex, active sets only
  std::vector<std::uint64_t> active_words_;  // packed set-active bits
  std::vector<std::uint8_t> chosen_;
  TraversalCounters counters_;
  bool built_ = false;
};

}  // namespace soldist

#endif  // SOLDIST_CORE_RIS_H_
