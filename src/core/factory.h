// Estimator factory: one call site for "give me approach X at sample
// number s" used by the experiment harness, the adaptive selector, and
// the examples.

#ifndef SOLDIST_CORE_FACTORY_H_
#define SOLDIST_CORE_FACTORY_H_

#include <memory>

#include "core/estimator.h"
#include "core/snapshot.h"
#include "model/influence_graph.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// Creates the estimator for one run. `sampling` selects the sampling
/// parallelism (default: the legacy sequential path; see SamplingOptions).
std::unique_ptr<InfluenceEstimator> MakeEstimator(
    const InfluenceGraph* ig, Approach approach, std::uint64_t sample_number,
    std::uint64_t seed,
    SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual,
    const SamplingOptions& sampling = {});

}  // namespace soldist

#endif  // SOLDIST_CORE_FACTORY_H_
