// Estimator factory: one call site for "give me approach X at sample
// number s under diffusion model M" used by the experiment harness, the
// adaptive selector, and the examples.

#ifndef SOLDIST_CORE_FACTORY_H_
#define SOLDIST_CORE_FACTORY_H_

#include <memory>

#include "core/estimator.h"
#include "core/snapshot.h"
#include "model/diffusion.h"
#include "model/influence_graph.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// Creates the estimator for one run under `instance`'s diffusion model.
/// `sampling` selects the sampling parallelism for both models (IC
/// default: the legacy sequential path; LT always uses the chunked
/// deterministic streams — see SamplingOptions and core/lt_estimators.h).
/// `snapshot_mode` applies to the IC Snapshot estimator only (the LT
/// snapshot estimator has a single, naive-with-cached-base strategy).
std::unique_ptr<InfluenceEstimator> MakeEstimator(
    const ModelInstance& instance, Approach approach,
    std::uint64_t sample_number, std::uint64_t seed,
    SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual,
    const SamplingOptions& sampling = {});

/// IC-only convenience overload (the pre-LT signature). Deprecated: it
/// silently pins the diffusion model to IC — pass a ModelInstance
/// (ModelInstance::Ic(ig) for plain IC), or go through the api::Session
/// facade, which also validates the workload with Status.
[[deprecated(
    "use MakeEstimator(ModelInstance, ...) or api::Session::Solve")]]
std::unique_ptr<InfluenceEstimator> MakeEstimator(
    const InfluenceGraph* ig, Approach approach, std::uint64_t sample_number,
    std::uint64_t seed,
    SnapshotEstimator::Mode snapshot_mode = SnapshotEstimator::Mode::kResidual,
    const SamplingOptions& sampling = {});

}  // namespace soldist

#endif  // SOLDIST_CORE_FACTORY_H_
