// IMM — Influence Maximization via Martingales (Tang, Shi & Xiao,
// SIGMOD 2015), reference [69] of the paper and the de-facto standard
// RIS stopping rule: a sampling phase that lower-bounds OPT_k via
// exponential guessing with martingale concentration bounds, then a final
// RR-set count θ = λ*/LB guaranteeing (1−1/e−ε)-approximation with
// probability 1 − n^−ℓ.

#ifndef SOLDIST_CORE_IMM_H_
#define SOLDIST_CORE_IMM_H_

#include <vector>

#include "sim/max_coverage.h"
#include "model/influence_graph.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// IMM parameters (the paper's usual defaults: ε = 0.1..0.5, ℓ = 1).
struct ImmParams {
  int k = 1;
  double epsilon = 0.1;
  double ell = 1.0;
};

/// Output of RunImm.
struct ImmResult {
  /// Lower bound on OPT_k established by the sampling phase.
  double opt_lower_bound = 0.0;
  /// Final number of RR sets used for selection.
  std::uint64_t theta = 0;
  /// Selected seeds (greedy max coverage over the final collection).
  std::vector<VertexId> seeds;
  /// Estimated influence of the seeds: n · F_R(seeds).
  double estimated_influence = 0.0;
  /// Sampling-phase iterations used (1 .. log2(n)-1).
  int guessing_rounds = 0;
  /// Total traversal cost of all RR-set generation.
  TraversalCounters counters;
};

/// \brief Runs IMM end to end (Algorithms 1-3 of the IMM paper).
///
/// The collection is grown incrementally across the guessing rounds and
/// reused for the final selection, as in the original ("IMM reuses the RR
/// sets generated in the sampling phase").
///
/// With SamplingOptions::UseEngine() each round's RR-set delta is drawn
/// through SamplingEngine's chunked deterministic streams (one fresh
/// master per round), so results are worker-count-independent; the
/// default keeps the legacy sequential two-stream loop.
ImmResult RunImm(const InfluenceGraph& ig, const ImmParams& params,
                 std::uint64_t seed, const SamplingOptions& sampling = {});

}  // namespace soldist

#endif  // SOLDIST_CORE_IMM_H_
