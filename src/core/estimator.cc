#include "core/estimator.h"

namespace soldist {

std::string ApproachName(Approach approach) {
  switch (approach) {
    case Approach::kOneshot:
      return "Oneshot";
    case Approach::kSnapshot:
      return "Snapshot";
    case Approach::kRis:
      return "RIS";
  }
  return "?";
}

}  // namespace soldist
