#include "core/estimator.h"

#include "util/logging.h"

namespace soldist {

double InfluenceEstimator::InitialBound(VertexId /*v*/) {
  SOLDIST_CHECK(false)
      << "InitialBound called on an estimator without "
         "ProvidesInitialBounds() — the CELF driver must fall back to "
         "exact initial estimates";
  return 0.0;
}

std::string ApproachName(Approach approach) {
  switch (approach) {
    case Approach::kOneshot:
      return "Oneshot";
    case Approach::kSnapshot:
      return "Snapshot";
    case Approach::kRis:
      return "RIS";
  }
  return "?";
}

}  // namespace soldist
