// TIM+-style sample-number determination (Tang, Xiao & Shi 2014), the
// canonical RIS stopping rule the paper discusses in Section 3.5.3: pick
// θ so that a (1−1/e−ε)-approximation holds with probability 1 − n^−ℓ,
// using a KPT estimate (the expected fraction-covered statistic of random
// RR sets) as the OPT_k lower bound.

#ifndef SOLDIST_CORE_TIM_H_
#define SOLDIST_CORE_TIM_H_

#include <vector>

#include "core/greedy.h"
#include "model/influence_graph.h"
#include "sim/counters.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// Parameters of the TIM+ determination.
struct TimParams {
  int k = 1;
  double epsilon = 0.1;  ///< approximation slack ε
  double ell = 1.0;      ///< failure probability exponent: δ = n^−ℓ
};

/// Output of RunTimPlus.
struct TimResult {
  /// KPT* — the estimated lower bound on OPT_k (paper [70] Algorithm 2).
  double kpt = 0.0;
  /// θ — the derived RR-set count λ/KPT*.
  std::uint64_t theta = 0;
  /// Greedy seeds from a fresh RIS estimator with that θ.
  GreedyRunResult greedy;
  /// RR sets generated during KPT estimation (measurement overhead).
  std::uint64_t kpt_rr_sets = 0;
  /// Total traversal cost (KPT estimation + final build + selection).
  TraversalCounters counters;
};

/// \brief Estimates KPT (Tang et al. Algorithm 2).
///
/// Round i draws c_i = (6ℓ·ln n + 6·ln log2 n)·2^i RR sets and computes
/// the mean of κ(R) = 1 − (1 − w(R)/m)^k, where w(R) is the RR set's
/// in-degree weight; it stops when the mean exceeds 2^−i and returns
/// KPT* = n · mean / 2. Returns 1.0 when all rounds fail (KPT >= 1
/// always: a seed activates itself).
/// With SamplingOptions::UseEngine() each round's c_i RR sets are drawn
/// through the engine's chunked deterministic streams; κ(R) terms are
/// summed in sample order, so KPT* is worker-count-independent.
double EstimateKpt(const InfluenceGraph& ig, const TimParams& params,
                   std::uint64_t seed, std::uint64_t* rr_sets_used,
                   TraversalCounters* counters,
                   const SamplingOptions& sampling = {});

/// λ(ε, k, ℓ, n) = (8 + 2ε) n (ℓ ln n + ln C(n,k) + ln 2) ε^−2: the TIM+
/// numerator; θ = λ / KPT.
double TimLambda(const InfluenceGraph& ig, const TimParams& params);

/// \brief End-to-end TIM+: estimate KPT, derive θ, select seeds with the
/// RIS estimator through the standard greedy framework.
TimResult RunTimPlus(const InfluenceGraph& ig, const TimParams& params,
                     std::uint64_t seed,
                     const SamplingOptions& sampling = {});

}  // namespace soldist

#endif  // SOLDIST_CORE_TIM_H_
