// CELF lazy greedy (Leskovec et al. 2007, paper Section 3.3.3): for
// *submodular* estimators, a stale marginal is an upper bound on the
// fresh one, so most Estimate calls can be skipped. Selection is
// identical to RunGreedy up to tie-handling; the point is the Estimate
// call reduction, quantified by the ablation bench.

#ifndef SOLDIST_CORE_CELF_H_
#define SOLDIST_CORE_CELF_H_

#include "core/greedy.h"

namespace soldist {

/// \brief Statistics from a lazy-greedy run.
struct CelfRunResult {
  GreedyRunResult greedy;
  /// Estimate calls actually made (vs. k * n for the plain framework).
  std::uint64_t estimate_calls = 0;
};

/// \brief Runs CELF.
///
/// Requires estimator->EstimatesAreMarginal() (Snapshot, RIS): Oneshot's
/// independent estimates violate the lazy-evaluation invariant (Section
/// 3.3.1) and are rejected with a CHECK.
CelfRunResult RunCelfGreedy(InfluenceEstimator* estimator,
                            VertexId num_vertices, int k, Rng* tie_rng);

}  // namespace soldist

#endif  // SOLDIST_CORE_CELF_H_
