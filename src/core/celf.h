// CELF lazy greedy (Leskovec et al. 2007, paper Section 3.3.3): for
// *submodular* estimators, a stale marginal is an upper bound on the
// fresh one, so most Estimate calls can be skipped. Selection is
// identical to RunGreedy up to tie-handling; the point is the Estimate
// call reduction, quantified by the ablation bench.
//
// Estimators with ProvidesInitialBounds() (the condensed Snapshot
// backend) skip the n-exact-call initialization too: the queue is seeded
// with sound upper bounds (InitialBound) marked stale, so the first
// iteration only refreshes candidates whose bound exceeds the eventual
// winner's exact gain. Selection — seeds AND recorded estimates — is
// unchanged: a stale entry is always refreshed before it can be
// selected, and when the true round winner W (max fresh gain, max
// shuffle rank among ties) is re-pushed, every entry still above it
// carries a bound ≥ W's gain and therefore gets refreshed to a fresh
// value that either loses to W or contradicts W's maximality.

#ifndef SOLDIST_CORE_CELF_H_
#define SOLDIST_CORE_CELF_H_

#include "core/greedy.h"

namespace soldist {

/// \brief Statistics from a lazy-greedy run.
struct CelfRunResult {
  GreedyRunResult greedy;
  /// Estimate calls actually made (vs. k * n for the plain framework).
  std::uint64_t estimate_calls = 0;
};

/// \brief Runs CELF.
///
/// Requires estimator->EstimatesAreMarginal() (Snapshot, RIS): Oneshot's
/// independent estimates violate the lazy-evaluation invariant (Section
/// 3.3.1) and are rejected with a CHECK.
CelfRunResult RunCelfGreedy(InfluenceEstimator* estimator,
                            VertexId num_vertices, int k, Rng* tie_rng);

}  // namespace soldist

#endif  // SOLDIST_CORE_CELF_H_
