#include "core/factory.h"

#include "core/lt_estimators.h"
#include "core/oneshot.h"
#include "core/ris.h"

namespace soldist {
namespace {

std::unique_ptr<InfluenceEstimator> MakeIcEstimator(
    const InfluenceGraph* ig, Approach approach, std::uint64_t sample_number,
    std::uint64_t seed, SnapshotEstimator::Mode snapshot_mode,
    const SamplingOptions& sampling) {
  switch (approach) {
    case Approach::kOneshot:
      return std::make_unique<OneshotEstimator>(ig, sample_number, seed,
                                                sampling);
    case Approach::kSnapshot:
      return std::make_unique<SnapshotEstimator>(ig, sample_number, seed,
                                                 snapshot_mode, sampling);
    case Approach::kRis:
      return std::make_unique<RisEstimator>(ig, sample_number, seed,
                                            sampling);
  }
  SOLDIST_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace

std::unique_ptr<InfluenceEstimator> MakeEstimator(
    const ModelInstance& instance, Approach approach,
    std::uint64_t sample_number, std::uint64_t seed,
    SnapshotEstimator::Mode snapshot_mode, const SamplingOptions& sampling) {
  SOLDIST_CHECK(instance.ig != nullptr);
  if (instance.model == DiffusionModel::kLt) {
    SOLDIST_CHECK(instance.lt_weights != nullptr)
        << "LT instance without LtWeights — resolve it through "
           "InstanceRegistry::GetModelInstance or ModelInstance::Lt";
    return MakeLtEstimator(instance.lt_weights, approach, sample_number,
                           seed, sampling);
  }
  return MakeIcEstimator(instance.ig, approach, sample_number, seed,
                         snapshot_mode, sampling);
}

std::unique_ptr<InfluenceEstimator> MakeEstimator(
    const InfluenceGraph* ig, Approach approach, std::uint64_t sample_number,
    std::uint64_t seed, SnapshotEstimator::Mode snapshot_mode,
    const SamplingOptions& sampling) {
  return MakeIcEstimator(ig, approach, sample_number, seed, snapshot_mode,
                         sampling);
}

}  // namespace soldist
