#include "core/greedy.h"

#include <algorithm>

namespace soldist {

std::vector<VertexId> GreedyRunResult::SortedSeedSet() const {
  std::vector<VertexId> sorted = seeds;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

GreedyRunResult RunGreedy(InfluenceEstimator* estimator,
                          VertexId num_vertices, int k, Rng* tie_rng) {
  SOLDIST_CHECK(k >= 1);
  SOLDIST_CHECK(static_cast<VertexId>(k) <= num_vertices);

  estimator->Build();

  std::vector<VertexId> order(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) order[v] = v;
  std::shuffle(order.begin(), order.end(), tie_rng->engine());

  std::vector<std::uint8_t> selected(num_vertices, 0);
  GreedyRunResult result;
  result.seeds.reserve(k);
  result.estimates.reserve(k);
  for (int round = 0; round < k; ++round) {
    VertexId best = kInvalidVertex;
    double best_estimate = -1.0;
    for (VertexId v : order) {
      if (selected[v]) continue;
      double estimate = estimator->Estimate(v);
      // ">=": the LAST maximum in shuffled order wins (Algorithm 3.1
      // line 5), which breaks ties uniformly at random.
      if (estimate >= best_estimate) {
        best_estimate = estimate;
        best = v;
      }
    }
    SOLDIST_CHECK(best != kInvalidVertex);
    estimator->Update(best);
    selected[best] = 1;
    result.seeds.push_back(best);
    result.estimates.push_back(best_estimate);
  }
  return result;
}

}  // namespace soldist
