#include "core/snapshot.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <numeric>

#include "graph/reach_sketch.h"
#include "graph/traversal.h"
#include "random/splitmix64.h"
#include "sim/condensed_snapshot.h"

namespace soldist {
namespace {

template <typename Vec>
std::uint64_t VecBytes(const Vec& v) {
  return static_cast<std::uint64_t>(v.capacity() * sizeof(v[0]));
}

}  // namespace

/// \brief Per-mode reachability backend. Build consumes the SAME sampler
/// streams in every mode, so backends differ only in how (and how fast)
/// they answer reachability — never in what they answer.
class SnapshotEstimator::Backend {
 public:
  virtual ~Backend() = default;
  virtual void Build() = 0;
  /// Σ_i r_i(residual, v) as an exact integer (the caller divides by τ).
  virtual std::uint64_t EstimateTotal(VertexId v) = 0;
  virtual void Update(VertexId v) = 0;
  /// Σ_i bound_i(v); only the condensed backend implements it.
  virtual std::uint64_t InitialBoundTotal(VertexId v) {
    (void)v;
    SOLDIST_CHECK(false) << "backend has no initial bounds";
    return 0;
  }
  virtual std::uint64_t MemoryBytes() const = 0;
};

namespace {

/// kNaive / kResidual: the pre-condensation code, verbatim — full
/// snapshots in CSR form, per-candidate BFS on the (residual) live-edge
/// graphs.
class FullSnapshotBackend : public SnapshotEstimator::Backend {
 public:
  FullSnapshotBackend(const InfluenceGraph* ig, std::uint64_t tau,
                      std::uint64_t seed, SnapshotEstimator::Mode mode,
                      const SamplingOptions& sampling,
                      TraversalCounters* counters)
      : ig_(ig),
        tau_(tau),
        seed_(seed),
        mode_(mode),
        sampling_(sampling),
        sampler_(ig),
        counters_(counters),
        visited_(ig->num_vertices()) {
    queue_.reserve(ig->num_vertices());
  }

  void Build() override {
    snapshots_.reserve(tau_);
    if (sampling_.UseEngine()) {
      SamplingEngine engine(sampling_);
      std::vector<SnapshotShard> shards =
          SampleSnapshotShards(*ig_, seed_, tau_, &engine);
      for (SnapshotShard& shard : shards) {
        *counters_ += shard.counters;
        for (Snapshot& snap : shard.snapshots) {
          snapshots_.push_back(std::move(snap));
        }
      }
    } else {
      Rng rng(seed_);  // legacy single-stream path
      for (std::uint64_t i = 0; i < tau_; ++i) {
        snapshots_.push_back(sampler_.Sample(&rng, counters_));
      }
    }
    if (mode_ == SnapshotEstimator::Mode::kNaive) {
      base_reach_.assign(tau_, 0);  // r_i(∅) = 0
    } else {
      removed_.assign(
          tau_ * static_cast<std::uint64_t>(ig_->num_vertices()), 0);
    }
  }

  std::uint64_t EstimateTotal(VertexId v) override {
    std::uint64_t total = 0;
    if (mode_ == SnapshotEstimator::Mode::kNaive) {
      scratch_.assign(seeds_.begin(), seeds_.end());
      scratch_.push_back(v);
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        total += sampler_.CountReachable(snapshots_[i], scratch_,
                                         counters_) -
                 base_reach_[i];
      }
    } else {
      const VertexId source[1] = {v};
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        total += ResidualReach(i, source, /*mark_removed=*/false);
      }
    }
    return total;
  }

  void Update(VertexId v) override {
    seeds_.push_back(v);
    if (mode_ == SnapshotEstimator::Mode::kNaive) {
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        base_reach_[i] = static_cast<std::uint32_t>(
            sampler_.CountReachable(snapshots_[i], seeds_, counters_));
      }
    } else {
      const VertexId source[1] = {v};
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        ResidualReach(i, source, /*mark_removed=*/true);
      }
    }
  }

  std::uint64_t MemoryBytes() const override {
    std::uint64_t bytes = VecBytes(base_reach_) + VecBytes(removed_) +
                          VecBytes(seeds_) + VecBytes(queue_) +
                          VecBytes(scratch_) +
                          static_cast<std::uint64_t>(visited_.size()) * 4;
    for (const Snapshot& snap : snapshots_) {
      bytes += VecBytes(snap.out_offsets) + VecBytes(snap.out_targets);
    }
    return bytes;
  }

 private:
  /// Reachable-count from `sources` in snapshot i, skipping vertices
  /// already removed from the residual graph (residual mode only; in
  /// naive mode nothing is ever removed).
  std::uint32_t ResidualReach(std::size_t i,
                              std::span<const VertexId> sources,
                              bool mark_removed) {
    const Snapshot& snap = snapshots_[i];
    const std::uint8_t* removed =
        removed_.data() + i * static_cast<std::uint64_t>(ig_->num_vertices());
    visited_.NextEpoch();
    queue_.clear();
    for (VertexId s : sources) {
      if (removed[s]) continue;
      if (visited_.Mark(s)) queue_.push_back(s);
    }
    std::size_t head = 0;
    while (head < queue_.size()) {
      VertexId u = queue_[head++];
      counters_->vertices += 1;
      const EdgeId begin = snap.out_offsets[u];
      const EdgeId end = snap.out_offsets[u + 1];
      counters_->edges += end - begin;
      for (EdgeId e = begin; e < end; ++e) {
        VertexId w = snap.out_targets[e];
        if (removed[w] || visited_.IsMarked(w)) continue;
        visited_.Mark(w);
        queue_.push_back(w);
      }
    }
    if (mark_removed) {
      auto* removed_mut =
          removed_.data() +
          i * static_cast<std::uint64_t>(ig_->num_vertices());
      for (VertexId u : queue_) removed_mut[u] = 1;
    }
    return static_cast<std::uint32_t>(queue_.size());
  }

  const InfluenceGraph* ig_;
  std::uint64_t tau_;
  std::uint64_t seed_;
  SnapshotEstimator::Mode mode_;
  SamplingOptions sampling_;
  SnapshotSampler sampler_;
  TraversalCounters* counters_;
  std::vector<Snapshot> snapshots_;
  /// Naive mode: r_i(S) for the current seed set S.
  std::vector<std::uint32_t> base_reach_;
  std::vector<VertexId> seeds_;
  /// Residual mode: removed_[i * n + v] = 1 when v was deleted from H_i.
  std::vector<std::uint8_t> removed_;
  VisitedMarker visited_;
  std::vector<VertexId> queue_;
  std::vector<VertexId> scratch_;
};

/// kCondensed: SCC DAGs with incrementally maintained marginal gains.
///
/// Exactness argument, component by component:
///  * Condensation preserves reachability, so r_i(v) = Σ sizes of the
///    DAG components reachable from comp(v).
///  * Every set removed by Update is a reachability set — closed under
///    successors and a union of whole components (reaching one member of
///    an SCC reaches all of it). Hence "removed" is component-granular
///    and successor-closed, and a residual walk may skip removed
///    components without missing live ones (a live component reachable
///    only through removed ones would itself be removed).
///  * Gains are cached per (snapshot, component); Update invalidates a
///    conservative superset of the stale entries — the live DAG
///    *ancestors* of the newly removed components (precise reverse walk)
///    or, when the removal is large, every entry of the snapshot (O(1)
///    generation bump). Invalidation can only cause recomputation, never
///    change a value.
///
/// Layout, tuned for the access pattern (τ up to 2^16 snapshots means
/// every per-snapshot indirection in Estimate is a cache miss):
///  * comp_of is TRANSPOSED after Build into one vertex-major array —
///    Estimate(v) streams its τ component ids sequentially;
///  * per-component state is one packed 8-byte {value, gen} record in a
///    single flat array (removed = sentinel generation), so the state
///    lookup is one cache line, not three.
class CondensedBackend : public SnapshotEstimator::Backend {
 public:
  CondensedBackend(const InfluenceGraph* ig, std::uint64_t tau,
                   std::uint64_t seed, const SamplingOptions& sampling,
                   TraversalCounters* counters)
      : ig_(ig),
        tau_(tau),
        seed_(seed),
        sampling_(sampling),
        counters_(counters),
        visited_(0) {}

  void Build() override {
    snaps_.reserve(tau_);
    if (sampling_.UseEngine()) {
      SamplingEngine engine(sampling_);
      std::vector<CondensedSnapshotShard> shards =
          SampleCondensedSnapshotShards(*ig_, seed_, tau_, &engine);
      for (CondensedSnapshotShard& shard : shards) {
        *counters_ += shard.counters;
        for (CondensedSnapshot& snap : shard.snapshots) {
          snaps_.push_back(std::move(snap));
        }
      }
    } else {
      // Legacy single-stream path: same snapshot stream as kResidual,
      // condensed one at a time so the raw CSR never accumulates.
      Rng rng(seed_);
      SnapshotSampler sampler(ig_);
      SnapshotCondenser condenser(ig_->num_vertices());
      Snapshot scratch;
      for (std::uint64_t i = 0; i < tau_; ++i) {
        sampler.SampleInto(&rng, counters_, &scratch);
        snaps_.push_back(condenser.Condense(scratch));
      }
    }
    std::uint32_t max_components = 0;
    state_offset_.resize(snaps_.size() + 1);
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const std::uint32_t c = snaps_[i].num_components();
      state_offset_[i + 1] = state_offset_[i] + c;
      max_components = std::max(max_components, c);
    }
    // gen 0 != generation 1: everything starts stale (then the sketch
    // pass below warms the saturated components).
    state_.assign(state_offset_.back(), CompState{0, 0});
    generation_.assign(snaps_.size(), 1);
    live_.resize(snaps_.size());
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      live_[i] = snaps_[i].num_components();
    }
    // Component-granular scratch: sized to the largest DAG, not to n
    // (the scratch-per-mode contract MemoryBytes reports on).
    visited_.Resize(max_components);
    queue_.reserve(max_components);
    rqueue_.reserve(max_components);
    WarmAndTranspose();
  }

  std::uint64_t EstimateTotal(VertexId v) override {
    std::uint64_t total = 0;
    const std::uint32_t* comps =
        comp_of_by_vertex_.data() + static_cast<std::uint64_t>(v) * tau_;
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const std::uint32_t c = comps[i];
      CompState& cs = state_[state_offset_[i] + c];
      if (cs.gen == kRemovedGen) continue;
      if (cs.gen != generation_[i]) {
        cs.value = ResidualDagReach(i, c);
        cs.gen = generation_[i];
      }
      total += cs.value;
    }
    return total;
  }

  void Update(VertexId v) override {
    const std::uint32_t* comps =
        comp_of_by_vertex_.data() + static_cast<std::uint64_t>(v) * tau_;
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const CondensedSnapshot& snap = snaps_[i];
      CompState* state = state_.data() + state_offset_[i];
      const std::uint32_t c = comps[i];
      if (state[c].gen == kRemovedGen) continue;  // r_i gains nothing

      // Forward walk over the live DAG: the components the new seed
      // removes from snapshot i.
      visited_.NextEpoch();
      queue_.clear();
      visited_.Mark(c);
      queue_.push_back(c);
      std::size_t head = 0;
      while (head < queue_.size()) {
        std::uint32_t u = queue_[head++];
        counters_->vertices += 1;
        auto successors = snap.dag.Successors(u);
        counters_->edges += successors.size();
        for (std::uint32_t w : successors) {
          if (state[w].gen == kRemovedGen || visited_.IsMarked(w)) continue;
          visited_.Mark(w);
          queue_.push_back(w);
        }
      }
      for (std::uint32_t u : queue_) state[u].gen = kRemovedGen;
      live_[i] -= static_cast<std::uint32_t>(queue_.size());

      // Cached gains are now stale exactly for the live ANCESTORS of the
      // newly removed components. For a big removal (the typical first
      // seed wipes the hub region, whose ancestors are most of the DAG)
      // a generation bump invalidates everything in O(1) — cheaper than
      // walking ancestors that cover the DAG anyway. For small removals
      // a precise reverse walk preserves the untouched caches.
      // Previously removed components cannot sit on a path INTO the
      // newly removed set (their successors were removed with them), so
      // the reverse walk skips them without losing an ancestor.
      if (queue_.size() * 4 > live_[i]) {
        ++generation_[i];
        continue;
      }
      const std::uint32_t stale = generation_[i] - 1;  // != generation
      rqueue_.assign(queue_.begin(), queue_.end());
      head = 0;
      while (head < rqueue_.size()) {
        std::uint32_t u = rqueue_[head++];
        counters_->vertices += 1;
        auto predecessors = snap.rev.Successors(u);
        counters_->edges += predecessors.size();
        for (std::uint32_t p : predecessors) {
          if (state[p].gen == kRemovedGen || visited_.IsMarked(p)) continue;
          visited_.Mark(p);
          state[p].gen = stale;
          rqueue_.push_back(p);
        }
      }
    }
  }

  std::uint64_t InitialBoundTotal(VertexId v) override {
    return bound_total_[v];
  }

  std::uint64_t MemoryBytes() const override {
    std::uint64_t bytes = VecBytes(bound_total_) + VecBytes(queue_) +
                          VecBytes(rqueue_) + VecBytes(state_) +
                          VecBytes(state_offset_) + VecBytes(generation_) +
                          VecBytes(live_) + VecBytes(comp_of_by_vertex_) +
                          static_cast<std::uint64_t>(visited_.size()) * 4;
    for (const CondensedSnapshot& snap : snaps_) bytes += snap.MemoryBytes();
    return bytes;
  }

 private:
  /// Packed per-(snapshot, component) state: one 8-byte record, one
  /// cache line per lookup. gen == kRemovedGen marks the component
  /// removed; otherwise value is valid iff gen == generation_[snapshot].
  struct CompState {
    std::uint32_t value;
    std::uint32_t gen;
  };
  static constexpr std::uint32_t kRemovedGen = ~0u;

  /// Exact residual reach of component c in snapshot i: BFS over the live
  /// DAG summing member counts. Counter accounting is component-granular
  /// — that reduction (DAG nodes/arcs instead of live vertices/edges) is
  /// precisely what bench_snapshot_backends records.
  std::uint32_t ResidualDagReach(std::size_t i, std::uint32_t c) {
    const CondensedSnapshot& snap = snaps_[i];
    const CompState* state = state_.data() + state_offset_[i];
    visited_.NextEpoch();
    queue_.clear();
    visited_.Mark(c);
    queue_.push_back(c);
    std::uint64_t total = 0;
    std::size_t head = 0;
    while (head < queue_.size()) {
      std::uint32_t u = queue_[head++];
      counters_->vertices += 1;
      total += snap.comp_size[u];
      auto successors = snap.dag.Successors(u);
      counters_->edges += successors.size();
      for (std::uint32_t w : successors) {
        if (state[w].gen == kRemovedGen || visited_.IsMarked(w)) continue;
        visited_.Mark(w);
        queue_.push_back(w);
      }
    }
    return static_cast<std::uint32_t>(total);
  }

  /// The sketch-warm + transpose pass, run once at the end of Build and
  /// chunked over snapshots through the SAME engine that sampled them
  /// (sequential when sampling was; chunks touch disjoint snapshots and
  /// per-slot bound partials merge as order-independent integer sums, so
  /// the worker count never changes a byte).
  ///
  /// Per snapshot, a bottom-k DAG sketch over a random rank PERMUTATION
  /// — distinct ranks, so a sketch that saturates below k holds the
  /// EXACT reachable count. That exactness does double duty:
  ///  * it pre-seeds the gain cache (CompState::value) for every
  ///    saturated component, so the first greedy iteration — the
  ///    descendant counting problem this machinery exists for — is a
  ///    lookup for the long small-reach tail under BOTH drivers;
  ///  * it makes the per-vertex CELF bounds tight there, with the
  ///    topologically capped successor-sum for unsaturated components:
  ///    bound(c) = min(size(c) + Σ bound(succ), Σ_{c' ≤ c} size(c')),
  ///    both sound because Tarjan descendants carry smaller ids.
  ///
  /// The same pass transposes comp_of vertex-major
  /// (comp_of_by_vertex_[v·τ + i]) so the Estimate/Update hot loops
  /// stream their per-vertex component ids sequentially instead of
  /// taking one cache miss per snapshot, then frees the per-snapshot
  /// copies — a transpose, not a second copy.
  void WarmAndTranspose() {
    const VertexId n = ig_->num_vertices();
    // ONE random permutation of ranks (perm[v]+1)/n shared by all τ
    // sketches: only rank distinctness matters for exactness, and a
    // fixed assignment keeps the per-snapshot cost at the merges. (The
    // stream never touches results either way — caches and bounds hold
    // exact values and sound bounds for ANY distinct ranks.)
    Rng rng(DeriveSeed(seed_, tau_ + 1));  // off the sampler chunk streams
    std::vector<VertexId> perm(n);
    std::iota(perm.begin(), perm.end(), VertexId{0});
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    std::vector<double> ranks(n);
    std::vector<VertexId> by_rank(n);  // inverse permutation = rank order
    for (VertexId v = 0; v < n; ++v) {
      ranks[v] = static_cast<double>(perm[v] + 1) / static_cast<double>(n);
      by_rank[perm[v]] = v;
    }
    comp_of_by_vertex_.resize(static_cast<std::uint64_t>(n) * tau_);

    struct Slot {
      DagSketcher sketcher;
      DagSketches sketches;
      std::vector<std::uint32_t> bound;
      std::vector<std::uint64_t> bound_partial;
      Slot(VertexId n, int k) : sketcher(n, k), bound_partial(n, 0) {}
    };
    auto warm_range = [&](std::uint64_t begin, std::uint64_t end,
                          Slot* slot) {
      for (std::uint64_t i = begin; i < end; ++i) {
        const CondensedSnapshot& snap = snaps_[i];
        CompState* state = state_.data() + state_offset_[i];
        const std::uint32_t num_components = snap.num_components();
        slot->sketcher.Sketch(snap.comp_of, n, snap.dag, ranks, by_rank,
                              &slot->sketches);
        slot->bound.resize(num_components);
        std::uint64_t prefix = 0;  // Σ size over ids ≤ c ⊇ descendants
        for (std::uint32_t c = 0; c < num_components; ++c) {
          prefix += snap.comp_size[c];
          if (slot->sketches.IsExact(c)) {
            slot->bound[c] = slot->sketches.len[c];
            state[c].value = slot->sketches.len[c];
            state[c].gen = 1;  // == the initial generation: warm
            continue;
          }
          std::uint64_t sum = snap.comp_size[c];
          for (std::uint32_t succ : snap.dag.Successors(c)) {
            sum += slot->bound[succ];
            if (sum >= prefix) break;  // already at the cap
          }
          slot->bound[c] = static_cast<std::uint32_t>(std::min(sum, prefix));
        }
        const std::uint32_t* comp_of = snap.comp_of.data();
        std::uint32_t* transposed = comp_of_by_vertex_.data() + i;
        for (VertexId v = 0; v < n; ++v) {
          slot->bound_partial[v] += slot->bound[comp_of[v]];
          transposed[static_cast<std::uint64_t>(v) * tau_] = comp_of[v];
        }
        std::vector<std::uint32_t>().swap(snaps_[i].comp_of);
      }
    };

    bound_total_.assign(n, 0);
    if (sampling_.UseEngine()) {
      SamplingEngine engine(sampling_);
      std::vector<std::unique_ptr<Slot>> slots(engine.num_workers());
      engine.Run(/*master_seed=*/0, tau_,
                 [&](const SamplingEngine::Chunk& chunk, std::size_t idx) {
        if (slots[idx] == nullptr) {
          slots[idx] = std::make_unique<Slot>(n, kSketchK);
        }
        warm_range(chunk.begin, chunk.end, slots[idx].get());
      });
      for (const std::unique_ptr<Slot>& slot : slots) {
        if (slot == nullptr) continue;
        for (VertexId v = 0; v < n; ++v) {
          bound_total_[v] += slot->bound_partial[v];
        }
      }
    } else {
      Slot slot(n, kSketchK);
      warm_range(0, tau_, &slot);
      bound_total_.swap(slot.bound_partial);
    }
  }

  /// Sketch width: sketches saturating below k yield EXACT bounds, so k
  /// trades bound tightness (fewer CELF refreshes) against τ per-sketch
  /// merge cost. 8 already bounds the long subcritical tail exactly.
  static constexpr int kSketchK = 8;

  const InfluenceGraph* ig_;
  std::uint64_t tau_;
  std::uint64_t seed_;
  SamplingOptions sampling_;
  TraversalCounters* counters_;
  std::vector<CondensedSnapshot> snaps_;
  /// comp_of_by_vertex_[v·τ + i] = component of v in snapshot i.
  std::vector<std::uint32_t> comp_of_by_vertex_;
  std::vector<CompState> state_;            // flat, all snapshots
  std::vector<std::uint64_t> state_offset_; // per snapshot, into state_
  std::vector<std::uint32_t> generation_;   // per snapshot
  std::vector<std::uint32_t> live_;         // live components per snapshot
  std::vector<std::uint64_t> bound_total_;  // per vertex, Σ_i bound_i
  VisitedMarker visited_;                   // component ids, max-C sized
  std::vector<std::uint32_t> queue_;
  std::vector<std::uint32_t> rqueue_;
};

}  // namespace

SnapshotEstimator::SnapshotEstimator(const InfluenceGraph* ig,
                                     std::uint64_t tau, std::uint64_t seed,
                                     Mode mode,
                                     const SamplingOptions& sampling)
    : ig_(ig), tau_(tau), seed_(seed), mode_(mode), sampling_(sampling) {
  SOLDIST_CHECK(tau_ >= 1);
}

SnapshotEstimator::~SnapshotEstimator() = default;

void SnapshotEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  // Scratch and residual state are owned (and sized) by the mode's
  // backend: the condensed backend keeps component-granular state only
  // and never allocates the O(n)-per-snapshot arrays of the full modes.
  if (mode_ == Mode::kCondensed) {
    backend_ = std::make_unique<CondensedBackend>(ig_, tau_, seed_,
                                                  sampling_, &counters_);
  } else {
    backend_ = std::make_unique<FullSnapshotBackend>(
        ig_, tau_, seed_, mode_, sampling_, &counters_);
  }
  backend_->Build();
}

double SnapshotEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  return static_cast<double>(backend_->EstimateTotal(v)) /
         static_cast<double>(tau_);
}

void SnapshotEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  backend_->Update(v);
}

double SnapshotEstimator::InitialBound(VertexId v) {
  SOLDIST_CHECK(built_);
  SOLDIST_CHECK(mode_ == Mode::kCondensed);
  return static_cast<double>(backend_->InitialBoundTotal(v)) /
         static_cast<double>(tau_);
}

std::uint64_t SnapshotEstimator::MemoryBytes() const {
  return backend_ == nullptr ? 0 : backend_->MemoryBytes();
}

std::string SnapshotModeName(SnapshotEstimator::Mode mode) {
  switch (mode) {
    case SnapshotEstimator::Mode::kNaive:
      return "naive";
    case SnapshotEstimator::Mode::kResidual:
      return "residual";
    case SnapshotEstimator::Mode::kCondensed:
      return "condensed";
  }
  return "?";
}

StatusOr<SnapshotEstimator::Mode> ParseSnapshotMode(
    const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "naive") return SnapshotEstimator::Mode::kNaive;
  if (lower == "residual") return SnapshotEstimator::Mode::kResidual;
  if (lower == "condensed") return SnapshotEstimator::Mode::kCondensed;
  return Status::InvalidArgument(
      "unknown snapshot mode: '" + name +
      "' (expected naive, residual, or condensed)");
}

}  // namespace soldist
