#include "core/snapshot.h"

#include <algorithm>
#include <cctype>
#include <memory>
#include <numeric>

#include "graph/traversal.h"
#include "random/splitmix64.h"
#include "sim/condensed_snapshot.h"
#include "sim/snapshot_arena.h"

namespace soldist {
namespace {

template <typename Vec>
std::uint64_t VecBytes(const Vec& v) {
  return static_cast<std::uint64_t>(v.capacity() * sizeof(v[0]));
}

}  // namespace

/// \brief Per-mode reachability backend. Build consumes the SAME sampler
/// streams in every mode, so backends differ only in how (and how fast)
/// they answer reachability — never in what they answer.
class SnapshotEstimator::Backend {
 public:
  virtual ~Backend() = default;
  virtual void Build() = 0;
  /// Σ_i r_i(residual, v) as an exact integer (the caller divides by τ).
  virtual std::uint64_t EstimateTotal(VertexId v) = 0;
  virtual void Update(VertexId v) = 0;
  /// Σ_i bound_i(v); only the condensed backend implements it.
  virtual std::uint64_t InitialBoundTotal(VertexId v) {
    (void)v;
    SOLDIST_CHECK(false) << "backend has no initial bounds";
    return 0;
  }
  virtual std::uint64_t MemoryBytes() const = 0;
};

namespace {

/// kNaive / kResidual: the pre-condensation code, verbatim — full
/// snapshots in CSR form, per-candidate BFS on the (residual) live-edge
/// graphs.
class FullSnapshotBackend : public SnapshotEstimator::Backend {
 public:
  FullSnapshotBackend(const InfluenceGraph* ig, std::uint64_t tau,
                      std::uint64_t seed, SnapshotEstimator::Mode mode,
                      const SamplingOptions& sampling,
                      TraversalCounters* counters)
      : ig_(ig),
        tau_(tau),
        seed_(seed),
        mode_(mode),
        sampling_(sampling),
        sampler_(ig),
        counters_(counters),
        visited_(ig->num_vertices()) {
    queue_.reserve(ig->num_vertices());
  }

  void Build() override {
    snapshots_.reserve(tau_);
    if (sampling_.UseEngine()) {
      SamplingEngine engine(sampling_);
      std::vector<SnapshotShard> shards =
          SampleSnapshotShards(*ig_, seed_, tau_, &engine);
      for (SnapshotShard& shard : shards) {
        *counters_ += shard.counters;
        for (Snapshot& snap : shard.snapshots) {
          snapshots_.push_back(std::move(snap));
        }
      }
    } else {
      Rng rng(seed_);  // legacy single-stream path
      for (std::uint64_t i = 0; i < tau_; ++i) {
        snapshots_.push_back(sampler_.Sample(&rng, counters_));
      }
    }
    if (mode_ == SnapshotEstimator::Mode::kNaive) {
      base_reach_.assign(tau_, 0);  // r_i(∅) = 0
    } else {
      removed_.assign(
          tau_ * static_cast<std::uint64_t>(ig_->num_vertices()), 0);
    }
  }

  std::uint64_t EstimateTotal(VertexId v) override {
    std::uint64_t total = 0;
    if (mode_ == SnapshotEstimator::Mode::kNaive) {
      scratch_.assign(seeds_.begin(), seeds_.end());
      scratch_.push_back(v);
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        total += sampler_.CountReachable(snapshots_[i], scratch_,
                                         counters_) -
                 base_reach_[i];
      }
    } else {
      const VertexId source[1] = {v};
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        total += ResidualReach(i, source, /*mark_removed=*/false);
      }
    }
    return total;
  }

  void Update(VertexId v) override {
    seeds_.push_back(v);
    if (mode_ == SnapshotEstimator::Mode::kNaive) {
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        base_reach_[i] = static_cast<std::uint32_t>(
            sampler_.CountReachable(snapshots_[i], seeds_, counters_));
      }
    } else {
      const VertexId source[1] = {v};
      for (std::size_t i = 0; i < snapshots_.size(); ++i) {
        ResidualReach(i, source, /*mark_removed=*/true);
      }
    }
  }

  std::uint64_t MemoryBytes() const override {
    std::uint64_t bytes = VecBytes(base_reach_) + VecBytes(removed_) +
                          VecBytes(seeds_) + VecBytes(queue_) +
                          VecBytes(scratch_) +
                          static_cast<std::uint64_t>(visited_.size()) * 4;
    for (const Snapshot& snap : snapshots_) {
      bytes += VecBytes(snap.out_offsets) + VecBytes(snap.out_targets);
    }
    return bytes;
  }

 private:
  /// Reachable-count from `sources` in snapshot i, skipping vertices
  /// already removed from the residual graph (residual mode only; in
  /// naive mode nothing is ever removed).
  std::uint32_t ResidualReach(std::size_t i,
                              std::span<const VertexId> sources,
                              bool mark_removed) {
    const Snapshot& snap = snapshots_[i];
    const std::uint8_t* removed =
        removed_.data() + i * static_cast<std::uint64_t>(ig_->num_vertices());
    visited_.NextEpoch();
    queue_.clear();
    for (VertexId s : sources) {
      if (removed[s]) continue;
      if (visited_.Mark(s)) queue_.push_back(s);
    }
    std::size_t head = 0;
    while (head < queue_.size()) {
      VertexId u = queue_[head++];
      counters_->vertices += 1;
      const EdgeId begin = snap.out_offsets[u];
      const EdgeId end = snap.out_offsets[u + 1];
      counters_->edges += end - begin;
      for (EdgeId e = begin; e < end; ++e) {
        VertexId w = snap.out_targets[e];
        if (removed[w] || visited_.IsMarked(w)) continue;
        visited_.Mark(w);
        queue_.push_back(w);
      }
    }
    if (mark_removed) {
      auto* removed_mut =
          removed_.data() +
          i * static_cast<std::uint64_t>(ig_->num_vertices());
      for (VertexId u : queue_) removed_mut[u] = 1;
    }
    return static_cast<std::uint32_t>(queue_.size());
  }

  const InfluenceGraph* ig_;
  std::uint64_t tau_;
  std::uint64_t seed_;
  SnapshotEstimator::Mode mode_;
  SamplingOptions sampling_;
  SnapshotSampler sampler_;
  TraversalCounters* counters_;
  std::vector<Snapshot> snapshots_;
  /// Naive mode: r_i(S) for the current seed set S.
  std::vector<std::uint32_t> base_reach_;
  std::vector<VertexId> seeds_;
  /// Residual mode: removed_[i * n + v] = 1 when v was deleted from H_i.
  std::vector<std::uint8_t> removed_;
  VisitedMarker visited_;
  std::vector<VertexId> queue_;
  std::vector<VertexId> scratch_;
};

/// \brief The condensed incremental-gain engine, shared by the fresh
/// kCondensed backend (which owns its worlds) and ArenaSnapshotEstimator
/// (which borrows a SnapshotArena prefix). Init consumes worlds +
/// precomputed warmth (sim/snapshot_arena.h); Estimate/Update are the
/// incrementally maintained marginal gains of PR 4, verbatim.
///
/// Init is deterministic and counter-free: the warm cache entries and
/// CELF bound totals are pure functions of the worlds (order-independent
/// integer sums), so the same worlds + warmth always yield byte-identical
/// state no matter who owns the worlds or how they were chunked.
class CondensedGainCore {
 public:
  CondensedGainCore() : visited_(0) {}

  /// Sizes the packed state, pre-seeds the gain cache from warmth's
  /// exact entries, accumulates the per-vertex CELF bound totals, and
  /// transposes comp_of vertex-major (comp_of_by_vertex_[v·τ + i]) so
  /// the Estimate/Update hot loops stream their per-vertex component ids
  /// sequentially instead of taking one cache miss per snapshot. The
  /// caller may free each world's comp_of afterwards (the fresh backend
  /// does; an arena keeps them for point queries).
  void Init(std::span<const CondensedSnapshot> snaps, VertexId n,
            std::span<const SnapshotWarmth> warmth,
            TraversalCounters* counters) {
    SOLDIST_CHECK(warmth.size() == snaps.size());
    snaps_ = snaps;
    tau_ = static_cast<std::uint64_t>(snaps.size());
    counters_ = counters;
    std::uint32_t max_components = 0;
    state_offset_.resize(snaps_.size() + 1);
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const std::uint32_t c = snaps_[i].num_components();
      state_offset_[i + 1] = state_offset_[i] + c;
      max_components = std::max(max_components, c);
    }
    // gen 0 != generation 1: everything starts stale (then the warmth
    // pass below pre-seeds the saturated components).
    state_.assign(state_offset_.back(), CompState{0, 0});
    generation_.assign(snaps_.size(), 1);
    live_.resize(snaps_.size());
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      live_[i] = snaps_[i].num_components();
    }
    // Component-granular scratch: sized to the largest DAG, not to n
    // (the scratch-per-mode contract MemoryBytes reports on).
    visited_.Resize(max_components);
    queue_.reserve(max_components);
    rqueue_.reserve(max_components);
    comp_of_by_vertex_.resize(static_cast<std::uint64_t>(n) * tau_);
    bound_total_.assign(n, 0);
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const CondensedSnapshot& snap = snaps_[i];
      const SnapshotWarmth& w = warmth[i];
      CompState* state = state_.data() + state_offset_[i];
      const std::uint32_t num_components = snap.num_components();
      for (std::uint32_t c = 0; c < num_components; ++c) {
        if (w.is_exact[c]) {
          // Exact warmth IS the reachable count: pre-seed the gain
          // cache so the first greedy iteration is a lookup for the
          // long small-reach tail.
          state[c].value = w.bound[c];
          state[c].gen = 1;  // == the initial generation: warm
        }
      }
      const std::uint32_t* comp_of = snap.comp_of.data();
      std::uint32_t* transposed = comp_of_by_vertex_.data() + i;
      for (VertexId v = 0; v < n; ++v) {
        bound_total_[v] += w.bound[comp_of[v]];
        transposed[static_cast<std::uint64_t>(v) * tau_] = comp_of[v];
      }
    }
  }

  std::uint64_t EstimateTotal(VertexId v) {
    std::uint64_t total = 0;
    const std::uint32_t* comps =
        comp_of_by_vertex_.data() + static_cast<std::uint64_t>(v) * tau_;
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const std::uint32_t c = comps[i];
      CompState& cs = state_[state_offset_[i] + c];
      if (cs.gen == kRemovedGen) continue;
      if (cs.gen != generation_[i]) {
        cs.value = ResidualDagReach(i, c);
        cs.gen = generation_[i];
      }
      total += cs.value;
    }
    return total;
  }

  void Update(VertexId v) {
    const std::uint32_t* comps =
        comp_of_by_vertex_.data() + static_cast<std::uint64_t>(v) * tau_;
    for (std::size_t i = 0; i < snaps_.size(); ++i) {
      const CondensedSnapshot& snap = snaps_[i];
      CompState* state = state_.data() + state_offset_[i];
      const std::uint32_t c = comps[i];
      if (state[c].gen == kRemovedGen) continue;  // r_i gains nothing

      // Forward walk over the live DAG: the components the new seed
      // removes from snapshot i.
      visited_.NextEpoch();
      queue_.clear();
      visited_.Mark(c);
      queue_.push_back(c);
      std::size_t head = 0;
      while (head < queue_.size()) {
        std::uint32_t u = queue_[head++];
        counters_->vertices += 1;
        auto successors = snap.dag.Successors(u);
        counters_->edges += successors.size();
        for (std::uint32_t w : successors) {
          if (state[w].gen == kRemovedGen || visited_.IsMarked(w)) continue;
          visited_.Mark(w);
          queue_.push_back(w);
        }
      }
      for (std::uint32_t u : queue_) state[u].gen = kRemovedGen;
      live_[i] -= static_cast<std::uint32_t>(queue_.size());

      // Cached gains are now stale exactly for the live ANCESTORS of the
      // newly removed components. For a big removal (the typical first
      // seed wipes the hub region, whose ancestors are most of the DAG)
      // a generation bump invalidates everything in O(1) — cheaper than
      // walking ancestors that cover the DAG anyway. For small removals
      // a precise reverse walk preserves the untouched caches.
      // Previously removed components cannot sit on a path INTO the
      // newly removed set (their successors were removed with them), so
      // the reverse walk skips them without losing an ancestor.
      if (queue_.size() * 4 > live_[i]) {
        ++generation_[i];
        continue;
      }
      const std::uint32_t stale = generation_[i] - 1;  // != generation
      rqueue_.assign(queue_.begin(), queue_.end());
      head = 0;
      while (head < rqueue_.size()) {
        std::uint32_t u = rqueue_[head++];
        counters_->vertices += 1;
        auto predecessors = snap.rev.Successors(u);
        counters_->edges += predecessors.size();
        for (std::uint32_t p : predecessors) {
          if (state[p].gen == kRemovedGen || visited_.IsMarked(p)) continue;
          visited_.Mark(p);
          state[p].gen = stale;
          rqueue_.push_back(p);
        }
      }
    }
  }

  std::uint64_t InitialBoundTotal(VertexId v) const {
    return bound_total_[v];
  }

  /// Bookkeeping bytes only — the worlds belong to the caller.
  std::uint64_t MemoryBytes() const {
    return VecBytes(bound_total_) + VecBytes(queue_) + VecBytes(rqueue_) +
           VecBytes(state_) + VecBytes(state_offset_) +
           VecBytes(generation_) + VecBytes(live_) +
           VecBytes(comp_of_by_vertex_) +
           static_cast<std::uint64_t>(visited_.size()) * 4;
  }

 private:
  /// Packed per-(snapshot, component) state: one 8-byte record, one
  /// cache line per lookup. gen == kRemovedGen marks the component
  /// removed; otherwise value is valid iff gen == generation_[snapshot].
  struct CompState {
    std::uint32_t value;
    std::uint32_t gen;
  };
  static constexpr std::uint32_t kRemovedGen = ~0u;

  /// Exact residual reach of component c in snapshot i: BFS over the live
  /// DAG summing member counts. Counter accounting is component-granular
  /// — that reduction (DAG nodes/arcs instead of live vertices/edges) is
  /// precisely what bench_snapshot_backends records.
  std::uint32_t ResidualDagReach(std::size_t i, std::uint32_t c) {
    const CondensedSnapshot& snap = snaps_[i];
    const CompState* state = state_.data() + state_offset_[i];
    visited_.NextEpoch();
    queue_.clear();
    visited_.Mark(c);
    queue_.push_back(c);
    std::uint64_t total = 0;
    std::size_t head = 0;
    while (head < queue_.size()) {
      std::uint32_t u = queue_[head++];
      counters_->vertices += 1;
      total += snap.comp_size[u];
      auto successors = snap.dag.Successors(u);
      counters_->edges += successors.size();
      for (std::uint32_t w : successors) {
        if (state[w].gen == kRemovedGen || visited_.IsMarked(w)) continue;
        visited_.Mark(w);
        queue_.push_back(w);
      }
    }
    return static_cast<std::uint32_t>(total);
  }

  std::span<const CondensedSnapshot> snaps_;
  std::uint64_t tau_ = 0;
  TraversalCounters* counters_ = nullptr;
  /// comp_of_by_vertex_[v·τ + i] = component of v in snapshot i.
  std::vector<std::uint32_t> comp_of_by_vertex_;
  std::vector<CompState> state_;            // flat, all snapshots
  std::vector<std::uint64_t> state_offset_; // per snapshot, into state_
  std::vector<std::uint32_t> generation_;   // per snapshot
  std::vector<std::uint32_t> live_;         // live components per snapshot
  std::vector<std::uint64_t> bound_total_;  // per vertex, Σ_i bound_i
  VisitedMarker visited_;                   // component ids, max-C sized
  std::vector<std::uint32_t> queue_;
  std::vector<std::uint32_t> rqueue_;
};

/// kCondensed: SCC DAGs with incrementally maintained marginal gains.
///
/// Exactness argument, component by component:
///  * Condensation preserves reachability, so r_i(v) = Σ sizes of the
///    DAG components reachable from comp(v).
///  * Every set removed by Update is a reachability set — closed under
///    successors and a union of whole components (reaching one member of
///    an SCC reaches all of it). Hence "removed" is component-granular
///    and successor-closed, and a residual walk may skip removed
///    components without missing live ones (a live component reachable
///    only through removed ones would itself be removed).
///  * Gains are cached per (snapshot, component); Update invalidates a
///    conservative superset of the stale entries — the live DAG
///    *ancestors* of the newly removed components (precise reverse walk)
///    or, when the removal is large, every entry of the snapshot (O(1)
///    generation bump). Invalidation can only cause recomputation, never
///    change a value.
///
/// Layout, tuned for the access pattern (τ up to 2^16 snapshots means
/// every per-snapshot indirection in Estimate is a cache miss):
///  * comp_of is TRANSPOSED after Build into one vertex-major array —
///    Estimate(v) streams its τ component ids sequentially;
///  * per-component state is one packed 8-byte {value, gen} record in a
///    single flat array (removed = sentinel generation), so the state
///    lookup is one cache line, not three.
class CondensedBackend : public SnapshotEstimator::Backend {
 public:
  CondensedBackend(const InfluenceGraph* ig, std::uint64_t tau,
                   std::uint64_t seed, const SamplingOptions& sampling,
                   TraversalCounters* counters)
      : ig_(ig),
        tau_(tau),
        seed_(seed),
        sampling_(sampling),
        counters_(counters) {}

  void Build() override {
    snaps_.reserve(tau_);
    if (sampling_.UseEngine()) {
      SamplingEngine engine(sampling_);
      std::vector<CondensedSnapshotShard> shards =
          SampleCondensedSnapshotShards(*ig_, seed_, tau_, &engine);
      for (CondensedSnapshotShard& shard : shards) {
        *counters_ += shard.counters;
        for (CondensedSnapshot& snap : shard.snapshots) {
          snaps_.push_back(std::move(snap));
        }
      }
    } else {
      // Legacy single-stream path: same snapshot stream as kResidual,
      // condensed one at a time so the raw CSR never accumulates.
      Rng rng(seed_);
      SnapshotSampler sampler(ig_);
      SnapshotCondenser condenser(ig_->num_vertices());
      Snapshot scratch;
      for (std::uint64_t i = 0; i < tau_; ++i) {
        sampler.SampleInto(&rng, counters_, &scratch);
        snaps_.push_back(condenser.Condense(scratch));
      }
    }
    // Warmth (sketch exact counts + CELF bounds) is a pure function of
    // each snapshot — the permutation stream below only orders the
    // sketch internals, never the results — so this matches a
    // SnapshotArena's precomputed warmth byte for byte.
    const std::vector<SnapshotWarmth> warmth = ComputeSnapshotWarmth(
        snaps_, ig_->num_vertices(), DeriveSeed(seed_, tau_ + 1), sampling_);
    core_.Init(snaps_, ig_->num_vertices(), warmth, counters_);
    // comp_of now lives transposed inside the core; free the per-snapshot
    // copies (a transpose, not a second copy).
    for (CondensedSnapshot& snap : snaps_) {
      std::vector<std::uint32_t>().swap(snap.comp_of);
    }
  }

  std::uint64_t EstimateTotal(VertexId v) override {
    return core_.EstimateTotal(v);
  }

  void Update(VertexId v) override { core_.Update(v); }

  std::uint64_t InitialBoundTotal(VertexId v) override {
    return core_.InitialBoundTotal(v);
  }

  std::uint64_t MemoryBytes() const override {
    std::uint64_t bytes = core_.MemoryBytes();
    for (const CondensedSnapshot& snap : snaps_) bytes += snap.MemoryBytes();
    return bytes;
  }

 private:
  const InfluenceGraph* ig_;
  std::uint64_t tau_;
  std::uint64_t seed_;
  SamplingOptions sampling_;
  TraversalCounters* counters_;
  std::vector<CondensedSnapshot> snaps_;
  CondensedGainCore core_;
};

}  // namespace

SnapshotEstimator::SnapshotEstimator(const InfluenceGraph* ig,
                                     std::uint64_t tau, std::uint64_t seed,
                                     Mode mode,
                                     const SamplingOptions& sampling)
    : ig_(ig), tau_(tau), seed_(seed), mode_(mode), sampling_(sampling) {
  SOLDIST_CHECK(tau_ >= 1);
}

SnapshotEstimator::~SnapshotEstimator() = default;

void SnapshotEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  // Scratch and residual state are owned (and sized) by the mode's
  // backend: the condensed backend keeps component-granular state only
  // and never allocates the O(n)-per-snapshot arrays of the full modes.
  if (mode_ == Mode::kCondensed) {
    backend_ = std::make_unique<CondensedBackend>(ig_, tau_, seed_,
                                                  sampling_, &counters_);
  } else {
    backend_ = std::make_unique<FullSnapshotBackend>(
        ig_, tau_, seed_, mode_, sampling_, &counters_);
  }
  backend_->Build();
}

double SnapshotEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  return static_cast<double>(backend_->EstimateTotal(v)) /
         static_cast<double>(tau_);
}

void SnapshotEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  backend_->Update(v);
}

double SnapshotEstimator::InitialBound(VertexId v) {
  SOLDIST_CHECK(built_);
  SOLDIST_CHECK(mode_ == Mode::kCondensed);
  return static_cast<double>(backend_->InitialBoundTotal(v)) /
         static_cast<double>(tau_);
}

std::uint64_t SnapshotEstimator::MemoryBytes() const {
  return backend_ == nullptr ? 0 : backend_->MemoryBytes();
}

/// Pimpl wrapper: the shared gain core is file-local, so the header only
/// forward-declares this.
class ArenaSnapshotEstimator::Core {
 public:
  CondensedGainCore gain;
};

ArenaSnapshotEstimator::ArenaSnapshotEstimator(const SnapshotArena* arena,
                                               std::uint64_t tau)
    : arena_(arena), tau_(tau) {
  SOLDIST_CHECK(arena_ != nullptr);
  SOLDIST_CHECK(tau_ >= 1);
  SOLDIST_CHECK(tau_ <= arena_->capacity())
      << "prefix " << tau_ << " exceeds arena capacity "
      << arena_->capacity();
}

ArenaSnapshotEstimator::~ArenaSnapshotEstimator() = default;

void ArenaSnapshotEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  // The sampling cost of exactly the first τ worlds — identical to what
  // a fresh build at τ would have accumulated.
  counters_ = arena_->PrefixCounters(tau_);
  core_ = std::make_unique<Core>();
  core_->gain.Init(arena_->Worlds(tau_), arena_->num_vertices(),
                   arena_->Warmths(tau_), &counters_);
}

double ArenaSnapshotEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  return static_cast<double>(core_->gain.EstimateTotal(v)) /
         static_cast<double>(tau_);
}

void ArenaSnapshotEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  core_->gain.Update(v);
}

double ArenaSnapshotEstimator::InitialBound(VertexId v) {
  SOLDIST_CHECK(built_);
  return static_cast<double>(core_->gain.InitialBoundTotal(v)) /
         static_cast<double>(tau_);
}

std::uint64_t ArenaSnapshotEstimator::MemoryBytes() const {
  return core_ == nullptr ? 0 : core_->gain.MemoryBytes();
}

std::string SnapshotModeName(SnapshotEstimator::Mode mode) {
  switch (mode) {
    case SnapshotEstimator::Mode::kNaive:
      return "naive";
    case SnapshotEstimator::Mode::kResidual:
      return "residual";
    case SnapshotEstimator::Mode::kCondensed:
      return "condensed";
  }
  return "?";
}

StatusOr<SnapshotEstimator::Mode> ParseSnapshotMode(
    const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "naive") return SnapshotEstimator::Mode::kNaive;
  if (lower == "residual") return SnapshotEstimator::Mode::kResidual;
  if (lower == "condensed") return SnapshotEstimator::Mode::kCondensed;
  return Status::InvalidArgument(
      "unknown snapshot mode: '" + name +
      "' (expected naive, residual, or condensed)");
}

}  // namespace soldist
