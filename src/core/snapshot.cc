#include "core/snapshot.h"

namespace soldist {

SnapshotEstimator::SnapshotEstimator(const InfluenceGraph* ig,
                                     std::uint64_t tau, std::uint64_t seed,
                                     Mode mode,
                                     const SamplingOptions& sampling)
    : ig_(ig),
      tau_(tau),
      seed_(seed),
      mode_(mode),
      sampling_(sampling),
      sampler_(ig),
      visited_(ig->num_vertices()) {
  SOLDIST_CHECK(tau_ >= 1);
  queue_.reserve(ig->num_vertices());
}

void SnapshotEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  snapshots_.reserve(tau_);
  if (sampling_.UseEngine()) {
    SamplingEngine engine(sampling_);
    std::vector<SnapshotShard> shards =
        SampleSnapshotShards(*ig_, seed_, tau_, &engine);
    for (SnapshotShard& shard : shards) {
      counters_ += shard.counters;
      for (Snapshot& snap : shard.snapshots) {
        snapshots_.push_back(std::move(snap));
      }
    }
  } else {
    Rng rng(seed_);  // legacy single-stream path
    for (std::uint64_t i = 0; i < tau_; ++i) {
      snapshots_.push_back(sampler_.Sample(&rng, &counters_));
    }
  }
  if (mode_ == Mode::kNaive) {
    base_reach_.assign(tau_, 0);  // r_i(∅) = 0
  } else {
    removed_.assign(tau_ * static_cast<std::uint64_t>(ig_->num_vertices()),
                    0);
  }
}

std::uint32_t SnapshotEstimator::ResidualReach(
    std::size_t i, std::span<const VertexId> sources, bool mark_removed) {
  const Snapshot& snap = snapshots_[i];
  const std::uint8_t* removed =
      removed_.data() + i * static_cast<std::uint64_t>(ig_->num_vertices());
  visited_.NextEpoch();
  queue_.clear();
  for (VertexId s : sources) {
    if (removed[s]) continue;
    if (visited_.Mark(s)) queue_.push_back(s);
  }
  std::size_t head = 0;
  while (head < queue_.size()) {
    VertexId u = queue_[head++];
    counters_.vertices += 1;
    const EdgeId begin = snap.out_offsets[u];
    const EdgeId end = snap.out_offsets[u + 1];
    counters_.edges += end - begin;
    for (EdgeId e = begin; e < end; ++e) {
      VertexId w = snap.out_targets[e];
      if (removed[w] || visited_.IsMarked(w)) continue;
      visited_.Mark(w);
      queue_.push_back(w);
    }
  }
  if (mark_removed) {
    auto* removed_mut = removed_.data() +
                        i * static_cast<std::uint64_t>(ig_->num_vertices());
    for (VertexId u : queue_) removed_mut[u] = 1;
  }
  return static_cast<std::uint32_t>(queue_.size());
}

double SnapshotEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  std::uint64_t total = 0;
  if (mode_ == Mode::kNaive) {
    scratch_.assign(seeds_.begin(), seeds_.end());
    scratch_.push_back(v);
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
      total += sampler_.CountReachable(snapshots_[i], scratch_, &counters_) -
               base_reach_[i];
    }
  } else {
    const VertexId source[1] = {v};
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
      total += ResidualReach(i, source, /*mark_removed=*/false);
    }
  }
  return static_cast<double>(total) / static_cast<double>(tau_);
}

void SnapshotEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  seeds_.push_back(v);
  if (mode_ == Mode::kNaive) {
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
      base_reach_[i] = static_cast<std::uint32_t>(
          sampler_.CountReachable(snapshots_[i], seeds_, &counters_));
    }
  } else {
    const VertexId source[1] = {v};
    for (std::size_t i = 0; i < snapshots_.size(); ++i) {
      ResidualReach(i, source, /*mark_removed=*/true);
    }
  }
}

}  // namespace soldist
