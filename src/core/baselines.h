// Cheap heuristic baselines (paper Section 3.6: quick guesses that trade
// accuracy for speed). Useful as sanity anchors in examples and tests:
// greedy with any reasonable sample number should beat them.

#ifndef SOLDIST_CORE_BASELINES_H_
#define SOLDIST_CORE_BASELINES_H_

#include <vector>

#include "model/influence_graph.h"
#include "random/rng.h"

namespace soldist {

/// Top-k vertices by out-degree (ties by lower id).
std::vector<VertexId> MaxDegreeSeeds(const Graph& graph, int k);

/// k distinct uniform-random vertices.
std::vector<VertexId> RandomSeeds(VertexId num_vertices, int k, Rng* rng);

/// Degree-discount heuristic (Chen et al. 2009) specialized to uniform
/// probability p: repeatedly picks the vertex maximizing the discounted
/// degree dd(v) = d(v) − 2 t(v) − (d(v) − t(v)) t(v) p, where t(v) counts
/// already-selected in-neighbors.
std::vector<VertexId> DegreeDiscountSeeds(const Graph& graph, int k,
                                          double p);

}  // namespace soldist

#endif  // SOLDIST_CORE_BASELINES_H_
