// Oneshot (paper Algorithm 3.2): Monte-Carlo simulation on the spot.
// Sample number β = simulations per Estimate call. Estimates are unbiased
// but mutually independent, so neither monotonicity nor submodularity of
// the estimated function is guaranteed (Section 3.3.1).

#ifndef SOLDIST_CORE_ONESHOT_H_
#define SOLDIST_CORE_ONESHOT_H_

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "model/influence_graph.h"
#include "sim/forward_sim.h"
#include "sim/sampling_engine.h"

namespace soldist {

/// \brief The Oneshot estimator.
class OneshotEstimator : public InfluenceEstimator {
 public:
  /// \param beta simulations per estimate (must be >= 1)
  /// \param seed PRNG seed for this run
  OneshotEstimator(const InfluenceGraph* ig, std::uint64_t beta,
                   std::uint64_t seed, const SamplingOptions& sampling = {});

  void Build() override {}  // Oneshot builds nothing.

  /// Mean activated count over β fresh simulations from S ∪ {v}.
  ///
  /// With SamplingOptions::UseEngine() the β runs of each call fan out
  /// through the engine: call j uses per-chunk streams derived from
  /// (seed, call index j), so the sequence of estimates is deterministic
  /// for any worker count. The default keeps the legacy single-stream
  /// loop, bit-identical to the pre-engine code.
  double Estimate(VertexId v) override;

  void Update(VertexId v) override { seeds_.push_back(v); }

  bool EstimatesAreMarginal() const override { return false; }
  std::uint64_t sample_number() const override { return beta_; }
  const TraversalCounters& counters() const override { return counters_; }
  std::string name() const override { return "Oneshot"; }

 private:
  const InfluenceGraph* ig_;
  std::uint64_t beta_;
  Rng rng_;
  ForwardSimulator simulator_;
  /// Engine path only: reused across Estimate calls (it may own a pool).
  std::unique_ptr<SamplingEngine> engine_;
  ForwardSimulatorCache sim_cache_;  ///< per-slot simulators, engine path
  std::uint64_t call_master_ = 0;  ///< DeriveSeed(seed, 3)
  std::uint64_t calls_ = 0;
  std::vector<VertexId> seeds_;
  std::vector<VertexId> scratch_;
  TraversalCounters counters_;
};

}  // namespace soldist

#endif  // SOLDIST_CORE_ONESHOT_H_
