#include "core/tim.h"

#include <cmath>

#include "core/bounds.h"
#include "core/ris.h"
#include "random/splitmix64.h"
#include "sim/rr_sampler.h"

namespace soldist {

double EstimateKpt(const InfluenceGraph& ig, const TimParams& params,
                   std::uint64_t seed, std::uint64_t* rr_sets_used,
                   TraversalCounters* counters) {
  const auto n = static_cast<double>(ig.num_vertices());
  const auto m = static_cast<double>(ig.num_edges());
  SOLDIST_CHECK(ig.num_edges() > 0);

  RrSampler sampler(&ig);
  Rng target_rng(DeriveSeed(seed, 21));
  Rng coin_rng(DeriveSeed(seed, 22));
  std::vector<VertexId> rr_set;
  std::uint64_t used = 0;

  const double log_n = std::log(n);
  const double log2_n = std::log2(n);
  const int max_rounds = std::max(1, static_cast<int>(log2_n) - 1);
  double kpt = 1.0;
  for (int i = 1; i <= max_rounds; ++i) {
    const auto c_i = static_cast<std::uint64_t>(
        std::ceil((6.0 * params.ell * log_n + 6.0 * std::log(log2_n)) *
                  std::pow(2.0, i)));
    double kappa_sum = 0.0;
    for (std::uint64_t j = 0; j < c_i; ++j) {
      sampler.Sample(&target_rng, &coin_rng, &rr_set, counters);
      ++used;
      // w(R) = Σ_{v∈R} d−(v).
      double width = 0.0;
      for (VertexId v : rr_set) {
        width += static_cast<double>(ig.graph().InDegree(v));
      }
      kappa_sum += 1.0 - std::pow(1.0 - width / m,
                                  static_cast<double>(params.k));
    }
    double mean_kappa = kappa_sum / static_cast<double>(c_i);
    if (mean_kappa > 1.0 / std::pow(2.0, i)) {
      kpt = n * mean_kappa / 2.0;
      break;
    }
  }
  if (rr_sets_used != nullptr) *rr_sets_used = used;
  return std::max(kpt, 1.0);  // OPT_k >= 1: a seed activates itself
}

double TimLambda(const InfluenceGraph& ig, const TimParams& params) {
  const auto n = static_cast<double>(ig.num_vertices());
  return (8.0 + 2.0 * params.epsilon) * n *
         (params.ell * std::log(n) +
          LogBinomial(ig.num_vertices(), params.k) + std::log(2.0)) /
         (params.epsilon * params.epsilon);
}

TimResult RunTimPlus(const InfluenceGraph& ig, const TimParams& params,
                     std::uint64_t seed) {
  SOLDIST_CHECK(params.k >= 1);
  SOLDIST_CHECK(params.epsilon > 0.0 && params.epsilon < 1.0);
  TimResult result;
  result.kpt = EstimateKpt(ig, params, seed, &result.kpt_rr_sets,
                           &result.counters);
  double theta_real = TimLambda(ig, params) / result.kpt;
  result.theta =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(theta_real));

  RisEstimator estimator(&ig, result.theta, DeriveSeed(seed, 23));
  Rng tie_rng(DeriveSeed(seed, 24));
  result.greedy =
      RunGreedy(&estimator, ig.num_vertices(), params.k, &tie_rng);
  result.counters += estimator.counters();
  return result;
}

}  // namespace soldist
