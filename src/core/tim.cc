#include "core/tim.h"

#include <cmath>
#include <memory>
#include <optional>
#include <span>

#include "core/bounds.h"
#include "core/ris.h"
#include "random/splitmix64.h"
#include "sim/rr_sampler.h"

namespace soldist {

double EstimateKpt(const InfluenceGraph& ig, const TimParams& params,
                   std::uint64_t seed, std::uint64_t* rr_sets_used,
                   TraversalCounters* counters,
                   const SamplingOptions& sampling) {
  const auto n = static_cast<double>(ig.num_vertices());
  const auto m = static_cast<double>(ig.num_edges());
  SOLDIST_CHECK(ig.num_edges() > 0);

  std::uint64_t used = 0;
  // Both paths accumulate here so a null `counters` is safe on either.
  TraversalCounters local_counters;

  // Exactly one of the two sampling paths gets its state constructed:
  // the engine, or the legacy sequential sampler + stream pair.
  std::unique_ptr<SamplingEngine> engine;
  std::optional<RrSampler> sampler;
  std::optional<Rng> target_rng;
  std::optional<Rng> coin_rng;
  std::vector<VertexId> rr_set;
  if (sampling.UseEngine()) {
    engine = std::make_unique<SamplingEngine>(sampling);
  } else {
    sampler.emplace(&ig);
    target_rng.emplace(DeriveSeed(seed, 21));
    coin_rng.emplace(DeriveSeed(seed, 22));
  }

  // κ(R) = 1 − (1 − w(R)/m)^k with w(R) = Σ_{v∈R} d−(v).
  auto kappa = [&](std::span<const VertexId> set) {
    double width = 0.0;
    for (VertexId v : set) {
      width += static_cast<double>(ig.graph().InDegree(v));
    }
    return 1.0 - std::pow(1.0 - width / m, static_cast<double>(params.k));
  };

  const double log_n = std::log(n);
  const double log2_n = std::log2(n);
  const int max_rounds = std::max(1, static_cast<int>(log2_n) - 1);
  double kpt = 1.0;
  for (int i = 1; i <= max_rounds; ++i) {
    const auto c_i = static_cast<std::uint64_t>(
        std::ceil((6.0 * params.ell * log_n + 6.0 * std::log(log2_n)) *
                  std::pow(2.0, i)));
    double kappa_sum = 0.0;
    if (engine != nullptr) {
      // One engine batch per round; κ terms are reduced shard-by-shard in
      // chunk order, keeping the float sum worker-count-independent.
      // Per-round chunk masters start at index 25: 21/22 are the legacy
      // KPT streams, 23/24 the RIS build and tie-breaking seeds of
      // RunTimPlus — every derived index must stay distinct.
      std::vector<RrShard> shards = SampleRrShards(
          ig, DeriveSeed(seed, 25 + static_cast<std::uint64_t>(i)), c_i,
          engine.get());
      for (const RrShard& shard : shards) {
        local_counters += shard.counters;
        for (std::uint64_t s = 0; s < shard.num_sets(); ++s) {
          kappa_sum += kappa(std::span<const VertexId>(
              shard.flat.data() + shard.offsets[s],
              shard.flat.data() + shard.offsets[s + 1]));
        }
      }
      used += c_i;
    } else {
      for (std::uint64_t j = 0; j < c_i; ++j) {
        sampler->Sample(&*target_rng, &*coin_rng, &rr_set, &local_counters);
        ++used;
        kappa_sum += kappa(rr_set);
      }
    }
    double mean_kappa = kappa_sum / static_cast<double>(c_i);
    if (mean_kappa > 1.0 / std::pow(2.0, i)) {
      kpt = n * mean_kappa / 2.0;
      break;
    }
  }
  if (rr_sets_used != nullptr) *rr_sets_used = used;
  if (counters != nullptr) *counters += local_counters;
  return std::max(kpt, 1.0);  // OPT_k >= 1: a seed activates itself
}

double TimLambda(const InfluenceGraph& ig, const TimParams& params) {
  const auto n = static_cast<double>(ig.num_vertices());
  return (8.0 + 2.0 * params.epsilon) * n *
         (params.ell * std::log(n) +
          LogBinomial(ig.num_vertices(), params.k) + std::log(2.0)) /
         (params.epsilon * params.epsilon);
}

TimResult RunTimPlus(const InfluenceGraph& ig, const TimParams& params,
                     std::uint64_t seed, const SamplingOptions& sampling) {
  SOLDIST_CHECK(params.k >= 1);
  SOLDIST_CHECK(params.epsilon > 0.0 && params.epsilon < 1.0);
  TimResult result;
  result.kpt = EstimateKpt(ig, params, seed, &result.kpt_rr_sets,
                           &result.counters, sampling);
  double theta_real = TimLambda(ig, params) / result.kpt;
  result.theta =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(theta_real));

  RisEstimator estimator(&ig, result.theta, DeriveSeed(seed, 23), sampling);
  Rng tie_rng(DeriveSeed(seed, 24));
  result.greedy =
      RunGreedy(&estimator, ig.num_vertices(), params.k, &tie_rng);
  result.counters += estimator.counters();
  return result;
}

}  // namespace soldist
