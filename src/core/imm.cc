#include "core/imm.h"

#include <cmath>
#include <memory>
#include <optional>

#include "core/bounds.h"
#include "random/rng.h"
#include "random/splitmix64.h"
#include "sim/rr_sampler.h"

namespace soldist {
namespace {

/// λ' of IMM Theorem 2: the RR-set count needed at guess x so that the
/// greedy cover either certifies OPT >= x/(1+ε') or the guess halves.
double LambdaPrime(double n, double ell, double eps_prime,
                   double log_binom) {
  double log_n = std::log(n);
  return (2.0 + 2.0 / 3.0 * eps_prime) *
         (log_binom + ell * log_n + std::log(std::log2(n))) * n /
         (eps_prime * eps_prime);
}

/// λ* of IMM Equation (6): the final RR-set count numerator.
double LambdaStar(double n, double ell, double epsilon, double log_binom) {
  double log_n = std::log(n);
  double alpha = std::sqrt(ell * log_n + std::log(2.0));
  double beta =
      std::sqrt((1.0 - 1.0 / M_E) * (log_binom + ell * log_n + std::log(2.0)));
  double factor = (1.0 - 1.0 / M_E) * alpha + beta;
  return 2.0 * n * factor * factor / (epsilon * epsilon);
}

}  // namespace

ImmResult RunImm(const InfluenceGraph& ig, const ImmParams& params,
                 std::uint64_t seed, const SamplingOptions& sampling) {
  SOLDIST_CHECK(params.k >= 1);
  SOLDIST_CHECK(static_cast<VertexId>(params.k) <= ig.num_vertices());
  SOLDIST_CHECK(params.epsilon > 0.0 && params.epsilon < 1.0);

  const double n = static_cast<double>(ig.num_vertices());
  const double log_binom = LogBinomial(ig.num_vertices(), params.k);
  const double eps_prime = std::sqrt(2.0) * params.epsilon;

  RrCollection collection(ig.num_vertices());
  std::vector<VertexId> rr_set;

  ImmResult result;
  // Exactly one of the two sampling paths gets its state constructed.
  std::unique_ptr<SamplingEngine> engine;
  std::optional<RrSampler> sampler;
  std::optional<Rng> target_rng;
  std::optional<Rng> coin_rng;
  if (sampling.UseEngine()) {
    engine = std::make_unique<SamplingEngine>(sampling);
  } else {
    sampler.emplace(&ig);
    target_rng.emplace(DeriveSeed(seed, 31));
    coin_rng.emplace(DeriveSeed(seed, 32));
  }
  // Each sample_until call is one engine batch with a fresh master seed:
  // the call sequence is data-dependent but deterministic, so chunk
  // streams — and thus the whole run — stay worker-count-independent.
  std::uint64_t batch = 0;
  auto sample_until = [&](std::uint64_t count) {
    if (engine != nullptr) {
      if (count <= collection.size()) return;
      std::vector<RrShard> shards =
          SampleRrShards(ig, DeriveSeed(seed, 33 + batch++),
                         count - collection.size(), engine.get());
      for (const RrShard& shard : shards) result.counters += shard.counters;
      collection.Merge(std::move(shards));
      return;
    }
    while (collection.size() < count) {
      sampler->Sample(&*target_rng, &*coin_rng, &rr_set, &result.counters);
      collection.Add(rr_set);
    }
  };

  // --- Sampling phase (Algorithm 2): guess OPT as n/2^i. ---
  double lb = 1.0;
  const double lambda_prime =
      LambdaPrime(n, params.ell, eps_prime, log_binom);
  const int max_rounds =
      std::max(1, static_cast<int>(std::log2(n)) - 1);
  for (int i = 1; i <= max_rounds; ++i) {
    ++result.guessing_rounds;
    const double x = n / std::pow(2.0, i);
    const auto theta_i =
        static_cast<std::uint64_t>(std::ceil(lambda_prime / x));
    sample_until(theta_i);
    collection.BuildIndex();
    MaxCoverageResult cover = GreedyMaxCoverage(collection, params.k);
    double estimate = n * cover.Fraction(collection.size());
    if (estimate >= (1.0 + eps_prime) * x) {
      lb = estimate / (1.0 + eps_prime);
      break;
    }
  }
  result.opt_lower_bound = lb;

  // --- Final sampling + node selection (Algorithms 1 & 3). ---
  const double lambda_star =
      LambdaStar(n, params.ell, params.epsilon, log_binom);
  result.theta = std::max<std::uint64_t>(
      collection.size(),
      static_cast<std::uint64_t>(std::ceil(lambda_star / lb)));
  sample_until(result.theta);
  collection.BuildIndex();
  MaxCoverageResult cover = GreedyMaxCoverage(collection, params.k);
  result.seeds = std::move(cover.seeds);
  result.estimated_influence = n * cover.Fraction(collection.size());
  return result;
}

}  // namespace soldist
