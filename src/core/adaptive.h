// Adaptive sample-number selection: the paper's concluding open problem
// (Section 7) asks for a practical way to pick β/τ for Oneshot and
// Snapshot, which — unlike RIS — ship no stopping rule. This module
// operationalizes the paper's own empirical finding ("for a sufficiently
// large sample number we obtain a unique solution"): double the sample
// number until independent repetitions agree on one seed set for several
// consecutive rounds.

#ifndef SOLDIST_CORE_ADAPTIVE_H_
#define SOLDIST_CORE_ADAPTIVE_H_

#include <vector>

#include "core/estimator.h"
#include "model/influence_graph.h"
#include "sim/counters.h"

namespace soldist {

/// Tuning of the doubling search.
struct AdaptiveParams {
  Approach approach = Approach::kSnapshot;
  int k = 1;
  /// Independent greedy runs per candidate sample number.
  int repetitions = 5;
  /// Consecutive unanimous rounds (with the same set) required to stop.
  int stable_rounds = 2;
  /// Search range: sample numbers 2^0 .. 2^max_exponent.
  int max_exponent = 20;
};

/// Output of SelectSampleNumber.
struct AdaptiveResult {
  /// Chosen sample number (the first of the stable streak), or the last
  /// candidate tried when not converged.
  std::uint64_t sample_number = 0;
  /// The unanimous seed set (modal set of the last round otherwise).
  std::vector<VertexId> seeds;
  bool converged = false;
  /// Candidate sample numbers tried.
  int rounds = 0;
  /// Total traversal cost spent across all runs (the price of selection).
  TraversalCounters counters;
};

/// \brief Runs the doubling search.
///
/// Round j runs `repetitions` independent greedy selections at sample
/// number 2^j. A round is *unanimous* when all repetitions return the
/// same seed set; after `stable_rounds` consecutive unanimous rounds with
/// the same set the search stops and reports the FIRST sample number of
/// the streak.
AdaptiveResult SelectSampleNumber(const InfluenceGraph& ig,
                                  const AdaptiveParams& params,
                                  std::uint64_t seed);

}  // namespace soldist

#endif  // SOLDIST_CORE_ADAPTIVE_H_
