#include "core/baselines.h"

#include <algorithm>

namespace soldist {

std::vector<VertexId> MaxDegreeSeeds(const Graph& graph, int k) {
  SOLDIST_CHECK(k >= 1);
  SOLDIST_CHECK(static_cast<VertexId>(k) <= graph.num_vertices());
  std::vector<VertexId> order(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&graph](VertexId a, VertexId b) {
                      VertexId da = graph.OutDegree(a);
                      VertexId db = graph.OutDegree(b);
                      return da != db ? da > db : a < b;
                    });
  order.resize(k);
  return order;
}

std::vector<VertexId> RandomSeeds(VertexId num_vertices, int k, Rng* rng) {
  SOLDIST_CHECK(k >= 1);
  SOLDIST_CHECK(static_cast<VertexId>(k) <= num_vertices);
  std::vector<std::uint8_t> taken(num_vertices, 0);
  std::vector<VertexId> seeds;
  seeds.reserve(k);
  while (seeds.size() < static_cast<std::size_t>(k)) {
    auto v = static_cast<VertexId>(rng->UniformInt(num_vertices));
    if (taken[v]) continue;
    taken[v] = 1;
    seeds.push_back(v);
  }
  return seeds;
}

std::vector<VertexId> DegreeDiscountSeeds(const Graph& graph, int k,
                                          double p) {
  SOLDIST_CHECK(k >= 1);
  SOLDIST_CHECK(static_cast<VertexId>(k) <= graph.num_vertices());
  const VertexId n = graph.num_vertices();
  std::vector<double> dd(n);
  std::vector<std::uint32_t> t(n, 0);
  std::vector<std::uint8_t> selected(n, 0);
  for (VertexId v = 0; v < n; ++v) dd[v] = graph.OutDegree(v);

  std::vector<VertexId> seeds;
  seeds.reserve(k);
  for (int round = 0; round < k; ++round) {
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (best == kInvalidVertex || dd[v] > dd[best]) best = v;
    }
    SOLDIST_CHECK(best != kInvalidVertex);
    selected[best] = 1;
    seeds.push_back(best);
    // Discount the out-neighbors of the chosen seed.
    for (VertexId w : graph.OutNeighbors(best)) {
      if (selected[w]) continue;
      ++t[w];
      double d = graph.OutDegree(w);
      double tw = t[w];
      dd[w] = d - 2.0 * tw - (d - tw) * tw * p;
    }
  }
  return seeds;
}

}  // namespace soldist
