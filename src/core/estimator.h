// The Build / Estimate / Update interface of the paper's simple greedy
// framework (Algorithm 3.1). Oneshot, Snapshot, and RIS are the three
// implementations (Algorithms 3.2-3.4).

#ifndef SOLDIST_CORE_ESTIMATOR_H_
#define SOLDIST_CORE_ESTIMATOR_H_

#include <string>
#include <vector>

#include "graph/types.h"
#include "sim/counters.h"

namespace soldist {

/// \brief An influence estimator pluggable into the greedy framework.
///
/// Lifecycle: Build() once, then k rounds of { Estimate(v) for candidate
/// vertices; Update(chosen) }. Implementations track the current seed set
/// internally through Update.
class InfluenceEstimator {
 public:
  virtual ~InfluenceEstimator() = default;

  /// Builds the estimator state (samples snapshots / RR sets; a no-op for
  /// Oneshot). Must be called exactly once before Estimate/Update.
  virtual void Build() = 0;

  /// Score used by greedy to rank v as the next seed given the current
  /// seed set S. Snapshot and RIS return the estimated *marginal* gain
  /// Inf(S+v) − Inf(S); Oneshot returns the estimated Inf(S+v) (paper
  /// Algorithm 3.2) — "the results will be the same regardless" for
  /// selection purposes (Section 3.2).
  virtual double Estimate(VertexId v) = 0;

  /// Commits v as the next seed and refreshes internal state.
  virtual void Update(VertexId v) = 0;

  /// True when Estimate returns marginal gains (enables lazy/CELF greedy).
  virtual bool EstimatesAreMarginal() const = 0;

  /// True when the estimator can bound Estimate(v) from above WITHOUT a
  /// traversal (e.g. the condensed Snapshot backend's DAG-sketch bounds).
  /// The CELF driver then seeds its lazy queue from InitialBound instead
  /// of n exact Estimate calls; selection is provably unchanged because
  /// the bounds are sound (see core/celf.h).
  virtual bool ProvidesInitialBounds() const { return false; }

  /// Sound upper bound on Estimate(v) for the EMPTY seed set (and, by
  /// submodularity, on every later marginal of v). Only called when
  /// ProvidesInitialBounds(); the default CHECK-fails.
  virtual double InitialBound(VertexId v);

  /// The sample number (β, τ, or θ).
  virtual std::uint64_t sample_number() const = 0;

  /// Work counters accumulated across Build/Estimate/Update.
  virtual const TraversalCounters& counters() const = 0;

  /// Approach name: "Oneshot", "Snapshot", or "RIS".
  virtual std::string name() const = 0;
};

/// The three approaches, in the paper's column order.
enum class Approach { kOneshot, kSnapshot, kRis };

/// Canonical display name ("Oneshot" / "Snapshot" / "RIS").
std::string ApproachName(Approach approach);

}  // namespace soldist

#endif  // SOLDIST_CORE_ESTIMATOR_H_
