#include "core/ris.h"

#include "random/splitmix64.h"

namespace soldist {

RisEstimator::RisEstimator(const InfluenceGraph* ig, std::uint64_t theta,
                           std::uint64_t seed,
                           const SamplingOptions& sampling)
    : ig_(ig),
      theta_(theta),
      seed_(seed),
      sampling_(sampling),
      collection_(ig->num_vertices()) {
  SOLDIST_CHECK(theta_ >= 1);
}

void RisEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  if (sampling_.UseEngine()) {
    SamplingEngine engine(sampling_);
    std::vector<RrShard> shards =
        SampleRrShards(*ig_, seed_, theta_, &engine);
    for (const RrShard& shard : shards) counters_ += shard.counters;
    collection_.Merge(std::move(shards));
  } else {
    // Legacy sequential path: the paper's two-stream discipline, sampler
    // state alive only for the duration of the build.
    RrSampler sampler(ig_);
    Rng target_rng(DeriveSeed(seed_, 1));
    Rng coin_rng(DeriveSeed(seed_, 2));
    std::vector<VertexId> rr_set;
    for (std::uint64_t i = 0; i < theta_; ++i) {
      sampler.Sample(&target_rng, &coin_rng, &rr_set, &counters_);
      collection_.Add(rr_set);
    }
  }
  collection_.BuildIndex();
  cover_count_.assign(ig_->num_vertices(), 0);
  for (std::uint64_t set_id = 0; set_id < collection_.size(); ++set_id) {
    for (VertexId v : collection_.Set(set_id)) ++cover_count_[v];
  }
  set_active_.assign(collection_.size(), 1);
  chosen_.assign(ig_->num_vertices(), 0);
}

double RisEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  SOLDIST_DCHECK(!chosen_[v] || cover_count_[v] == 0)
      << "stale score: chosen seed " << v
      << " still covers active sets — Update must decrement eagerly";
  return static_cast<double>(ig_->num_vertices()) *
         static_cast<double>(cover_count_[v]) / static_cast<double>(theta_);
}

void RisEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  chosen_[v] = 1;
  for (std::uint32_t set_id : collection_.InvertedList(v)) {
    if (!set_active_[set_id]) continue;
    set_active_[set_id] = 0;
    for (VertexId w : collection_.Set(set_id)) {
      SOLDIST_DCHECK(cover_count_[w] > 0);
      --cover_count_[w];
    }
  }
}

ArenaRisEstimator::ArenaRisEstimator(const RrArena* arena,
                                     std::uint64_t theta)
    : arena_(arena), theta_(theta), view_(arena, theta) {
  SOLDIST_CHECK(theta_ >= 1);
}

void ArenaRisEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  counters_ = view_.Counters();
  cover_count_ = view_.CoverCounts();
  active_words_.assign((theta_ + 63) / 64, ~std::uint64_t{0});
  if (theta_ % 64 != 0) {
    active_words_.back() = (std::uint64_t{1} << (theta_ % 64)) - 1;
  }
  chosen_.assign(arena_->num_vertices(), 0);
}

double ArenaRisEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  SOLDIST_DCHECK(!chosen_[v] || cover_count_[v] == 0)
      << "stale score: chosen seed " << v
      << " still covers active sets — Update must decrement eagerly";
  return static_cast<double>(arena_->num_vertices()) *
         static_cast<double>(cover_count_[v]) / static_cast<double>(theta_);
}

void ArenaRisEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  chosen_[v] = 1;
  for (std::uint32_t set_id : view_.InvertedList(v)) {
    std::uint64_t& word = active_words_[set_id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (set_id & 63);
    if ((word & bit) == 0) continue;
    word &= ~bit;
    // Through the view, not the arena: the view materializes sets for
    // non-flat storage backends (membership identical, order-free here).
    for (VertexId w : view_.Set(set_id)) {
      SOLDIST_DCHECK(cover_count_[w] > 0);
      --cover_count_[w];
    }
  }
}

}  // namespace soldist
