#include "core/ris.h"

#include "random/splitmix64.h"

namespace soldist {

RisEstimator::RisEstimator(const InfluenceGraph* ig, std::uint64_t theta,
                           std::uint64_t seed)
    : ig_(ig),
      theta_(theta),
      target_rng_(DeriveSeed(seed, 1)),
      coin_rng_(DeriveSeed(seed, 2)),
      sampler_(ig),
      collection_(ig->num_vertices()) {
  SOLDIST_CHECK(theta_ >= 1);
}

void RisEstimator::Build() {
  SOLDIST_CHECK(!built_) << "Build() must be called exactly once";
  built_ = true;
  std::vector<VertexId> rr_set;
  for (std::uint64_t i = 0; i < theta_; ++i) {
    sampler_.Sample(&target_rng_, &coin_rng_, &rr_set, &counters_);
    collection_.Add(rr_set);
  }
  collection_.BuildIndex();
  cover_count_.assign(ig_->num_vertices(), 0);
  for (std::uint64_t set_id = 0; set_id < collection_.size(); ++set_id) {
    for (VertexId v : collection_.Set(set_id)) ++cover_count_[v];
  }
  set_active_.assign(collection_.size(), 1);
}

double RisEstimator::Estimate(VertexId v) {
  SOLDIST_CHECK(built_);
  return static_cast<double>(ig_->num_vertices()) *
         static_cast<double>(cover_count_[v]) / static_cast<double>(theta_);
}

void RisEstimator::Update(VertexId v) {
  SOLDIST_CHECK(built_);
  for (std::uint64_t set_id : collection_.InvertedList(v)) {
    if (!set_active_[set_id]) continue;
    set_active_[set_id] = 0;
    for (VertexId w : collection_.Set(set_id)) {
      SOLDIST_DCHECK(cover_count_[w] > 0);
      --cover_count_[w];
    }
  }
}

}  // namespace soldist
