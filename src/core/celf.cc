#include "core/celf.h"

#include <algorithm>
#include <queue>

namespace soldist {
namespace {

struct HeapEntry {
  double bound;          // stale marginal (upper bound by submodularity)
  std::uint64_t shuffle_rank;  // larger rank wins ties (last-max semantics)
  VertexId vertex;
  int last_updated_round;

  bool operator<(const HeapEntry& other) const {
    if (bound != other.bound) return bound < other.bound;
    return shuffle_rank < other.shuffle_rank;
  }
};

}  // namespace

CelfRunResult RunCelfGreedy(InfluenceEstimator* estimator,
                            VertexId num_vertices, int k, Rng* tie_rng) {
  SOLDIST_CHECK(k >= 1);
  SOLDIST_CHECK(static_cast<VertexId>(k) <= num_vertices);
  SOLDIST_CHECK(estimator->EstimatesAreMarginal())
      << "CELF requires a submodular (marginal) estimator; Oneshot's "
         "independent estimates are not lazily reusable";

  estimator->Build();

  std::vector<VertexId> order(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) order[v] = v;
  std::shuffle(order.begin(), order.end(), tie_rng->engine());

  CelfRunResult result;
  std::priority_queue<HeapEntry> heap;
  if (estimator->ProvidesInitialBounds()) {
    // Seed the queue with sound upper bounds marked stale (round -1): a
    // bound entry is always refreshed with an exact Estimate before it
    // can be selected, so seeds and recorded estimates are identical to
    // the exact initialization below — only the call count drops.
    for (std::uint64_t rank = 0; rank < order.size(); ++rank) {
      VertexId v = order[rank];
      heap.push({estimator->InitialBound(v), rank, v, -1});
    }
  } else {
    for (std::uint64_t rank = 0; rank < order.size(); ++rank) {
      VertexId v = order[rank];
      double estimate = estimator->Estimate(v);
      ++result.estimate_calls;
      heap.push({estimate, rank, v, 0});
    }
  }

  for (int round = 0; round < k; ++round) {
    while (true) {
      HeapEntry top = heap.top();
      heap.pop();
      if (top.last_updated_round == round) {
        estimator->Update(top.vertex);
        result.greedy.seeds.push_back(top.vertex);
        result.greedy.estimates.push_back(top.bound);
        break;
      }
      top.bound = estimator->Estimate(top.vertex);
      ++result.estimate_calls;
      top.last_updated_round = round;
      heap.push(top);
    }
  }
  return result;
}

}  // namespace soldist
