#include "core/bounds.h"

#include <cmath>

#include "util/logging.h"

namespace soldist {

double LogBinomial(std::uint64_t n, std::uint64_t k) {
  SOLDIST_CHECK(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double OneshotSampleBound(const BoundParams& p) {
  SOLDIST_CHECK(p.opt_k > 0.0);
  double k = static_cast<double>(p.k);
  double n = static_cast<double>(p.n);
  return (k * k * n * (std::log(1.0 / p.delta) + std::log(std::max(k, 1.0)))) /
         (p.epsilon * p.epsilon * p.opt_k);
}

double SnapshotSampleBound(const BoundParams& p) {
  double n = static_cast<double>(p.n);
  double k = static_cast<double>(p.k);
  return n * n * (k * std::log(n) + std::log(1.0 / p.delta)) /
         (2.0 * p.epsilon * p.epsilon);
}

double RisSampleBound(const BoundParams& p) {
  SOLDIST_CHECK(p.opt_k > 0.0);
  double n = static_cast<double>(p.n);
  return (8.0 + 2.0 * p.epsilon) * n *
         (std::log(1.0 / p.delta) + LogBinomial(p.n, p.k)) /
         (p.opt_k * p.epsilon * p.epsilon);
}

double BorgsWeightThreshold(const BoundParams& p) {
  double k = static_cast<double>(p.k);
  double mn = static_cast<double>(p.m + p.n);
  return k * mn * std::log2(static_cast<double>(p.n)) /
         (p.epsilon * p.epsilon);
}

}  // namespace soldist
