#include "core/oneshot.h"

#include "random/splitmix64.h"

namespace soldist {

OneshotEstimator::OneshotEstimator(const InfluenceGraph* ig,
                                   std::uint64_t beta, std::uint64_t seed,
                                   const SamplingOptions& sampling)
    : ig_(ig), beta_(beta), rng_(seed), simulator_(ig) {
  SOLDIST_CHECK(beta_ >= 1);
  if (sampling.UseEngine()) {
    engine_ = std::make_unique<SamplingEngine>(sampling);
    call_master_ = DeriveSeed(seed, 3);
  }
}

double OneshotEstimator::Estimate(VertexId v) {
  scratch_.assign(seeds_.begin(), seeds_.end());
  scratch_.push_back(v);
  if (engine_ != nullptr) {
    return EstimateInfluenceSharded(*ig_, scratch_, beta_,
                                    DeriveSeed(call_master_, calls_++),
                                    engine_.get(), &counters_, &sim_cache_);
  }
  return simulator_.EstimateInfluence(scratch_, beta_, &rng_, &counters_);
}

}  // namespace soldist
