#include "core/oneshot.h"

namespace soldist {

OneshotEstimator::OneshotEstimator(const InfluenceGraph* ig,
                                   std::uint64_t beta, std::uint64_t seed)
    : ig_(ig), beta_(beta), rng_(seed), simulator_(ig) {
  SOLDIST_CHECK(beta_ >= 1);
}

double OneshotEstimator::Estimate(VertexId v) {
  scratch_.assign(seeds_.begin(), seeds_.end());
  scratch_.push_back(v);
  return simulator_.EstimateInfluence(scratch_, beta_, &rng_, &counters_);
}

}  // namespace soldist
