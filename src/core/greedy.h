// The simple greedy framework (paper Algorithm 3.1): random vertex-order
// shuffle, per-iteration Estimate sweep, last-max tie-breaking, Update.

#ifndef SOLDIST_CORE_GREEDY_H_
#define SOLDIST_CORE_GREEDY_H_

#include <vector>

#include "core/estimator.h"
#include "random/rng.h"

namespace soldist {

/// \brief Output of one greedy run.
struct GreedyRunResult {
  /// Seeds in selection order (v_1, ..., v_k).
  std::vector<VertexId> seeds;
  /// Estimator score of each seed at the time of its selection (absolute
  /// Inf(S+v) for Oneshot, marginal gain for Snapshot/RIS).
  std::vector<double> estimates;

  /// Seeds sorted ascending: the canonical seed-*set* identity used by the
  /// distribution analysis (selection order is irrelevant to the set).
  std::vector<VertexId> SortedSeedSet() const;
};

/// \brief Runs Algorithm 3.1.
///
/// Calls estimator->Build(), shuffles the vertex order with `tie_rng`
/// (line 2: ties between equal estimates are then broken uniformly by
/// taking the *last* maximum in shuffled order, line 5), and performs k
/// iterations of full Estimate sweeps (already-selected vertices are
/// skipped). Requires k <= num_vertices.
GreedyRunResult RunGreedy(InfluenceEstimator* estimator,
                          VertexId num_vertices, int k, Rng* tie_rng);

}  // namespace soldist

#endif  // SOLDIST_CORE_GREEDY_H_
